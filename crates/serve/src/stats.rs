//! Serve-level counters and latency quantiles.
//!
//! The engine's `GemmReport` describes one call from the inside; these
//! counters describe the serving tier from the outside: how many
//! requests arrived, how many were rejected or expired, how well the
//! batcher coalesced, and what the request latency distribution looks
//! like. Counter updates are single relaxed atomics on the serving hot
//! path; latency samples go into a fixed-size overwrite-oldest ring
//! (the same discipline as the telemetry trace rings — recording never
//! allocates after construction). Exporters mirror the `GemmReport`
//! conventions: `Display` for humans, [`ServeStats::to_json`] for
//! machines.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::queue::lock_unpoisoned;

/// Cached handles into the engine's process-wide metrics registry for
/// the serve-layer series. Each accessor pays the registry lookup once
/// (a `OnceLock`), so bumping a counter on the serving hot path is one
/// relaxed atomic add — the same discipline as [`StatsInner`], which
/// remains the in-band `STATS`-verb source; the registry is the
/// out-of-band scrape plane.
pub(crate) mod reg {
    use egemm::telemetry::metrics::{self, Counter, Gauge};
    use std::sync::OnceLock;

    macro_rules! serve_counter {
        ($name:ident, $series:literal) => {
            pub(crate) fn $name() -> &'static Counter {
                static H: OnceLock<&'static Counter> = OnceLock::new();
                H.get_or_init(|| metrics::counter($series))
            }
        };
    }

    serve_counter!(requests, "egemm_serve_requests_total");
    serve_counter!(busy_rejects, "egemm_serve_busy_rejects_total");
    serve_counter!(invalid, "egemm_serve_invalid_total");
    serve_counter!(deadline_misses, "egemm_serve_deadline_misses_total");
    serve_counter!(completed, "egemm_serve_completed_total");
    serve_counter!(engine_failures, "egemm_serve_engine_failures_total");
    serve_counter!(engine_calls, "egemm_serve_engine_calls_total");
    serve_counter!(dispatched, "egemm_serve_dispatched_total");
    serve_counter!(batched_requests, "egemm_serve_batched_requests_total");
    serve_counter!(dedup_hits, "egemm_serve_dedup_hits_total");
    serve_counter!(result_cache_hits, "egemm_serve_result_cache_hits_total");
    serve_counter!(result_cache_misses, "egemm_serve_result_cache_misses_total");
    serve_counter!(
        result_cache_evictions,
        "egemm_serve_result_cache_evictions_total"
    );
    serve_counter!(backpressure_pauses, "egemm_serve_backpressure_pauses_total");

    pub(crate) fn queue_depth() -> &'static Gauge {
        static H: OnceLock<&'static Gauge> = OnceLock::new();
        H.get_or_init(|| metrics::gauge("egemm_serve_queue_depth"))
    }

    pub(crate) fn open_connections() -> &'static Gauge {
        static H: OnceLock<&'static Gauge> = OnceLock::new();
        H.get_or_init(|| metrics::gauge("egemm_serve_open_connections"))
    }

    pub(crate) fn result_cache_bytes() -> &'static Gauge {
        static H: OnceLock<&'static Gauge> = OnceLock::new();
        H.get_or_init(|| metrics::gauge("egemm_serve_result_cache_bytes"))
    }

    /// Bump a serve counter, honouring the global metrics gate.
    pub(crate) fn bump(c: fn() -> &'static Counter) {
        if metrics::enabled() {
            c().inc();
        }
    }

    /// Set the queue-depth gauge, honouring the global metrics gate.
    pub(crate) fn set_queue_depth(depth: usize) {
        if metrics::enabled() {
            queue_depth().set(depth as i64);
        }
    }

    /// Adjust the open-connections gauge by `delta` (accept / close on
    /// either frontend).
    pub(crate) fn connections_delta(delta: i64) {
        if metrics::enabled() {
            let g = open_connections();
            g.set(g.get() + delta);
        }
    }

    /// Touch every serve series once so a scrape taken before the first
    /// event still lists the full family set (a zero counter is
    /// informative; an absent one looks like a wiring bug). Called from
    /// `Server::start`.
    pub(crate) fn touch_all() {
        let _ = (
            requests(),
            busy_rejects(),
            invalid(),
            deadline_misses(),
            completed(),
            engine_failures(),
            engine_calls(),
            dispatched(),
            batched_requests(),
            dedup_hits(),
            result_cache_hits(),
            result_cache_misses(),
            result_cache_evictions(),
            backpressure_pauses(),
            queue_depth(),
            open_connections(),
            result_cache_bytes(),
        );
    }
}

/// Latency samples retained for quantile estimation.
const LATENCY_RING: usize = 4096;

/// Lock-free-ish (one mutex around the sample ring, atomics elsewhere)
/// accumulator owned by the server.
pub(crate) struct StatsInner {
    pub submitted: AtomicU64,
    pub admitted: AtomicU64,
    pub rejected_busy: AtomicU64,
    pub rejected_invalid: AtomicU64,
    pub timed_out_before: AtomicU64,
    pub timed_out_after: AtomicU64,
    pub completed: AtomicU64,
    pub engine_failures: AtomicU64,
    /// Engine calls issued by the scheduler (each serves >= 1 request).
    pub engine_calls: AtomicU64,
    /// Requests served through those calls (completed + late-timeout).
    pub dispatched: AtomicU64,
    /// Requests that rode in a bucket of size >= 2.
    pub coalesced: AtomicU64,
    /// Requests that attached to an identical in-flight request instead
    /// of dispatching (one engine call fanned out to N tickets).
    pub dedup_hits: AtomicU64,
    latencies: Mutex<LatencyRing>,
}

struct LatencyRing {
    samples: Vec<u64>,
    next: usize,
    full: bool,
}

impl StatsInner {
    pub(crate) fn new() -> StatsInner {
        StatsInner {
            submitted: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            rejected_busy: AtomicU64::new(0),
            rejected_invalid: AtomicU64::new(0),
            timed_out_before: AtomicU64::new(0),
            timed_out_after: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            engine_failures: AtomicU64::new(0),
            engine_calls: AtomicU64::new(0),
            dispatched: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            dedup_hits: AtomicU64::new(0),
            latencies: Mutex::new(LatencyRing {
                samples: Vec::with_capacity(LATENCY_RING),
                next: 0,
                full: false,
            }),
        }
    }

    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one admission-to-response latency.
    pub(crate) fn record_latency(&self, ns: u64) {
        let mut ring = lock_unpoisoned(&self.latencies);
        if ring.samples.len() < LATENCY_RING {
            ring.samples.push(ns);
        } else {
            ring.full = true;
            let at = ring.next;
            ring.samples[at] = ns;
        }
        ring.next = (ring.next + 1) % LATENCY_RING;
    }

    pub(crate) fn snapshot(&self) -> ServeStats {
        let (p50_ns, p99_ns) = {
            let ring = lock_unpoisoned(&self.latencies);
            quantiles(&ring.samples)
        };
        ServeStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected_busy: self.rejected_busy.load(Ordering::Relaxed),
            rejected_invalid: self.rejected_invalid.load(Ordering::Relaxed),
            timed_out_before: self.timed_out_before.load(Ordering::Relaxed),
            timed_out_after: self.timed_out_after.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            engine_failures: self.engine_failures.load(Ordering::Relaxed),
            engine_calls: self.engine_calls.load(Ordering::Relaxed),
            dispatched: self.dispatched.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            dedup_hits: self.dedup_hits.load(Ordering::Relaxed),
            result_cache_hits: 0,
            result_cache_misses: 0,
            result_cache_evictions: 0,
            result_cache_bytes: 0,
            bytes_staging_saved: 0,
            tiles_stolen: 0,
            panel_reuse_hits: 0,
            p50_ns,
            p99_ns,
        }
    }
}

/// Nearest-rank quantiles over the retained samples (0 when empty).
fn quantiles(samples: &[u64]) -> (u64, u64) {
    if samples.is_empty() {
        return (0, 0);
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = |q: f64| {
        let i = ((sorted.len() as f64) * q).ceil() as usize;
        sorted[i.clamp(1, sorted.len()) - 1]
    };
    (rank(0.50), rank(0.99))
}

/// Point-in-time snapshot of the serving counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests presented to [`crate::Client::submit`].
    pub submitted: u64,
    /// Requests that entered the queue.
    pub admitted: u64,
    /// Rejected with [`crate::ServeError::Busy`] (queue full).
    pub rejected_busy: u64,
    /// Rejected at validation.
    pub rejected_invalid: u64,
    /// Deadline expired while queued (no engine time spent).
    pub timed_out_before: u64,
    /// Result computed but delivered past its deadline.
    pub timed_out_after: u64,
    /// Requests answered with a result inside their deadline.
    pub completed: u64,
    /// Requests answered [`crate::ServeError::Engine`] (caught panics).
    pub engine_failures: u64,
    /// Engine calls the scheduler issued.
    pub engine_calls: u64,
    /// Requests served through those engine calls.
    pub dispatched: u64,
    /// Requests that shared an engine call with at least one other.
    pub coalesced: u64,
    /// Requests answered by attaching to an identical in-flight request
    /// (the dedupe table): no queue slot, no engine dispatch of their
    /// own.
    pub dedup_hits: u64,
    /// Content-addressed result cache hits (served without any
    /// dispatch). Snapshot-sourced from the server's [`ResultCache`],
    /// like the engine-runtime counters below.
    pub result_cache_hits: u64,
    /// Result-cache lookups that missed (0 while the cache is disabled).
    pub result_cache_misses: u64,
    /// Results evicted to respect the cache's byte budget.
    pub result_cache_evictions: u64,
    /// Bytes currently resident in the result cache.
    pub result_cache_bytes: u64,
    /// Split-plane staging bytes the engine's fused split-and-pack
    /// pipeline avoided, summed over the server's lifetime. Read from
    /// the shared engine runtime at snapshot time (not a serve-side
    /// counter), so it covers every dispatch through this server's
    /// engine.
    pub bytes_staging_saved: u64,
    /// Tiles moved between engine workers by work-stealing, summed over
    /// the server's lifetime (read from the shared engine runtime at
    /// snapshot time, like `bytes_staging_saved`).
    pub tiles_stolen: u64,
    /// B panels served from the engine's cooperative panel store
    /// instead of being re-packed per tile, summed over the server's
    /// lifetime (same runtime-snapshot sourcing).
    pub panel_reuse_hits: u64,
    /// Median admission-to-response latency over the retained window.
    pub p50_ns: u64,
    /// 99th-percentile latency over the retained window.
    pub p99_ns: u64,
}

impl ServeStats {
    /// Requests per engine call: > 1.0 means the batcher is coalescing.
    /// 0.0 before the first dispatch.
    pub fn batched_ratio(&self) -> f64 {
        if self.engine_calls == 0 {
            0.0
        } else {
            self.dispatched as f64 / self.engine_calls as f64
        }
    }

    /// Result-cache hit ratio over all lookups while enabled, 0.0 idle.
    pub fn result_cache_hit_ratio(&self) -> f64 {
        let total = self.result_cache_hits + self.result_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.result_cache_hits as f64 / total as f64
        }
    }

    /// JSON rendering (hand-rolled like every exporter in this repo).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"submitted\":{},\"admitted\":{},\"rejected_busy\":{},\"rejected_invalid\":{},\
             \"timed_out_before\":{},\"timed_out_after\":{},\"completed\":{},\
             \"engine_failures\":{},\"engine_calls\":{},\"dispatched\":{},\"coalesced\":{},\
             \"batched_ratio\":{:.4},\"dedup_hits\":{},\"result_cache_hits\":{},\
             \"result_cache_misses\":{},\"result_cache_evictions\":{},\"result_cache_bytes\":{},\
             \"bytes_staging_saved\":{},\"tiles_stolen\":{},\
             \"panel_reuse_hits\":{},\"p50_ns\":{},\"p99_ns\":{}}}",
            self.submitted,
            self.admitted,
            self.rejected_busy,
            self.rejected_invalid,
            self.timed_out_before,
            self.timed_out_after,
            self.completed,
            self.engine_failures,
            self.engine_calls,
            self.dispatched,
            self.coalesced,
            self.batched_ratio(),
            self.dedup_hits,
            self.result_cache_hits,
            self.result_cache_misses,
            self.result_cache_evictions,
            self.result_cache_bytes,
            self.bytes_staging_saved,
            self.tiles_stolen,
            self.panel_reuse_hits,
            self.p50_ns,
            self.p99_ns,
        )
    }
}

impl std::fmt::Display for ServeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} submitted: {} ok, {} busy, {} invalid, {} expired ({} late), {} engine-failed; \
             {} engine call(s) for {} dispatched ({:.2}x batched); \
             {} deduped, {} memoized ({:.1} KiB resident, {} evicted); \
             {:.1} KiB staging saved; {} tile(s) stolen, {} panel(s) reused; \
             p50 {:.3} ms, p99 {:.3} ms",
            self.submitted,
            self.completed,
            self.rejected_busy,
            self.rejected_invalid,
            self.timed_out_before + self.timed_out_after,
            self.timed_out_after,
            self.engine_failures,
            self.engine_calls,
            self.dispatched,
            self.batched_ratio(),
            self.dedup_hits,
            self.result_cache_hits,
            self.result_cache_bytes as f64 / 1024.0,
            self.result_cache_evictions,
            self.bytes_staging_saved as f64 / 1024.0,
            self.tiles_stolen,
            self.panel_reuse_hits,
            self.p50_ns as f64 / 1e6,
            self.p99_ns as f64 / 1e6,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_nearest_rank() {
        let xs: Vec<u64> = (1..=100).collect();
        assert_eq!(quantiles(&xs), (50, 99));
        assert_eq!(quantiles(&[7]), (7, 7));
        assert_eq!(quantiles(&[]), (0, 0));
    }

    #[test]
    fn latency_ring_overwrites_oldest() {
        let s = StatsInner::new();
        for i in 0..(LATENCY_RING as u64 + 10) {
            s.record_latency(i);
        }
        let ring = lock_unpoisoned(&s.latencies);
        assert_eq!(ring.samples.len(), LATENCY_RING);
        assert!(ring.full);
        // The first 10 slots were overwritten by the newest samples.
        assert_eq!(ring.samples[0], LATENCY_RING as u64);
        assert_eq!(ring.samples[9], LATENCY_RING as u64 + 9);
        assert_eq!(ring.samples[10], 10);
    }

    #[test]
    fn batched_ratio_and_json() {
        let s = StatsInner::new();
        s.engine_calls.store(4, Ordering::Relaxed);
        s.dispatched.store(10, Ordering::Relaxed);
        let snap = s.snapshot();
        assert!((snap.batched_ratio() - 2.5).abs() < 1e-12);
        let j = snap.to_json();
        assert!(j.contains("\"batched_ratio\":2.5000"), "{j}");
        assert!(j.starts_with('{') && j.ends_with('}'));
    }
}
