//! Request and response types of the serving layer.

use egemm::telemetry::GemmReport;
use egemm::EmulationScheme;
use egemm_matrix::{GemmShape, Matrix};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// What kind of engine call a request asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobKind {
    /// `D = A·B (+ C)`. Requests without a C operand are batchable:
    /// compatible ones coalesce into one `gemm_batched` call.
    Gemm,
    /// Split-K GEMM with the given slice count (`0` auto-selects).
    /// Dispatched singly — each split-K call owns the whole pool.
    SplitK {
        /// Number of reduction slices; `0` = auto ([`egemm::choose_slices`]).
        slices: usize,
    },
}

/// One client request: operands, job kind, emulation scheme, and an
/// optional deadline relative to admission.
#[derive(Debug, Clone)]
pub struct GemmRequest {
    /// Left operand, `m x k`.
    pub a: Matrix<f32>,
    /// Right operand, `k x n`. Requests sharing B *content* (and shape
    /// and scheme) land in one bucket and split/pack B once.
    pub b: Matrix<f32>,
    /// Optional accumulator, `m x n`. Forces single dispatch.
    pub c: Option<Matrix<f32>>,
    /// Engine entry point to use.
    pub kind: JobKind,
    /// Emulation scheme; buckets never mix schemes.
    pub scheme: EmulationScheme,
    /// Deadline measured from admission. Expiry *before* dispatch skips
    /// the compute entirely; expiry detected *after* dispatch still
    /// reports [`ServeError::TimedOut`] (the engine time was spent, the
    /// client contract was not met).
    pub deadline: Option<Duration>,
}

impl GemmRequest {
    /// A plain `D = A·B` request under the default EGEMM-TC scheme.
    pub fn gemm(a: Matrix<f32>, b: Matrix<f32>) -> GemmRequest {
        GemmRequest {
            a,
            b,
            c: None,
            kind: JobKind::Gemm,
            scheme: EmulationScheme::EgemmTc,
            deadline: None,
        }
    }

    /// Set a deadline (builder style).
    pub fn with_deadline(mut self, deadline: Duration) -> GemmRequest {
        self.deadline = Some(deadline);
        self
    }

    /// Set the emulation scheme (builder style).
    pub fn with_scheme(mut self, scheme: EmulationScheme) -> GemmRequest {
        self.scheme = scheme;
        self
    }

    /// The problem shape this request describes (taken from A and B;
    /// validation checks the operands actually agree with it).
    pub fn shape(&self) -> GemmShape {
        GemmShape::new(self.a.rows(), self.b.cols(), self.a.cols())
    }
}

/// Why a request was not served. Every variant is a *per-request*
/// answer: one bad or unlucky request never affects its neighbours, the
/// scheduler, or the shared pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The admission queue was full. Retry later (or shed load).
    Busy {
        /// Queue occupancy observed at rejection (== the configured cap).
        queued: usize,
    },
    /// The deadline expired. `after_dispatch` distinguishes a request
    /// that never cost engine time (expired while queued) from one whose
    /// result arrived too late.
    TimedOut {
        /// True when the engine call ran but finished past the deadline.
        after_dispatch: bool,
    },
    /// Validation failed (dimension mismatch, non-finite values under
    /// the finite-only policy, empty operands).
    Invalid(String),
    /// The engine call panicked; the panic was caught at the dispatch
    /// boundary (the pool recovers via its own panic machinery) and is
    /// reported here instead of poisoning the scheduler.
    Engine(String),
    /// The server is shutting down and no longer admits requests.
    /// Requests admitted *before* shutdown still drain normally.
    Shutdown,
}

impl ServeError {
    /// Stable lowercase code used on the wire.
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::Busy { .. } => "busy",
            ServeError::TimedOut { .. } => "timeout",
            ServeError::Invalid(_) => "invalid",
            ServeError::Engine(_) => "engine",
            ServeError::Shutdown => "shutdown",
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Busy { queued } => {
                write!(f, "admission queue full ({queued} queued)")
            }
            ServeError::TimedOut { after_dispatch } => write!(
                f,
                "deadline expired {} dispatch",
                if *after_dispatch { "after" } else { "before" }
            ),
            ServeError::Invalid(msg) => write!(f, "invalid request: {msg}"),
            ServeError::Engine(msg) => write!(f, "engine failure: {msg}"),
            ServeError::Shutdown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A served result.
#[derive(Debug, Clone)]
pub struct ServeOutput {
    /// The product `D`, bit-identical to a direct cold engine call on
    /// the same operands.
    pub d: Matrix<f32>,
    /// Process-unique id assigned at admission. Returned on the wire,
    /// stamped into the dispatching call's [`GemmReport`] request
    /// traces, and drawn as a flow arrow in the Chrome-trace export —
    /// the correlation key between serve and engine telemetry.
    pub request_id: u64,
    /// Problem shape.
    pub shape: GemmShape,
    /// Requests that rode in the same engine call (1 = dispatched solo).
    pub batched_with: usize,
    /// True when the product was served from the content-addressed
    /// result cache (no engine dispatch; bit-identical to the dispatch
    /// that populated the cache, and therefore to a cold call).
    pub cached: bool,
    /// Time spent queued before dispatch, nanoseconds.
    pub queue_ns: u64,
    /// Admission-to-response latency, nanoseconds.
    pub total_ns: u64,
    /// Engine telemetry for the dispatching call, shared by every
    /// request in the bucket — `Some` only while `EGEMM_TRACE` /
    /// [`egemm::telemetry::set_enabled`] tracing is on.
    pub report: Option<Arc<GemmReport>>,
}
