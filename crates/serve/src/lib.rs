//! # egemm-serve — request serving over the persistent EGEMM-TC engine
//!
//! The library layers below this crate compute one GEMM at a time for
//! one caller at a time. This crate is the serving tier the persistent
//! runtime (worker pool + packed-operand cache) was built for: many
//! concurrent clients submit independent `gemm` / `split_k` jobs, and
//! the server turns them into as few engine calls as possible without
//! ever changing a result bit.
//!
//! Request flow:
//!
//! 1. **Admission** ([`Client::submit`]) — the request is validated
//!    (shape agreement, finite-value policy) and pushed into a *bounded*
//!    queue. A full queue rejects immediately with [`ServeError::Busy`];
//!    the queue never grows without bound, so overload degrades into
//!    fast rejections instead of latency collapse.
//! 2. **Bucketing** — the scheduler thread drains the queue and groups
//!    compatible requests by `(shape, emulation scheme, B-content
//!    fingerprint)`. A configurable [`ServerConfig::batch_window`] lets
//!    a bucket accumulate before dispatch.
//! 3. **Dispatch** — each bucket becomes one engine call: a shared-B
//!    bucket of `n` requests runs as one `gemm_batched`, so the O(N²)
//!    split and the panel pack of B execute once per bucket (cache
//!    fingerprint hits), not once per request. Per-request deadlines are
//!    enforced both *before* dispatch (expired requests are answered
//!    [`ServeError::TimedOut`] without costing engine time) and *after*
//!    (a result computed past its deadline is reported as such).
//!    Engine panics are caught at the dispatch boundary and answered
//!    per-request; the scheduler and the shared pool stay healthy.
//! 4. **Response** — every admitted request is answered exactly once,
//!    through the in-process [`Ticket`] or back over the TCP connection
//!    it arrived on. Graceful [`Server::shutdown`] drains everything
//!    already admitted before the scheduler exits.
//!
//! Serving can never change a bit: bucketing only decides *which public
//! engine entry point* runs a request, and every one of those entry
//! points is bit-identical to a cold [`egemm::Egemm::gemm`] (the
//! engine-level guarantee this repo enforces with property tests; the
//! serving-level restatement lives in `tests/serve.rs`).
//!
//! Above admission sits a content-addressed layer ([`dedupe`]): an
//! in-flight table coalescing identical concurrent requests into one
//! dispatch fanned out to every waiter, and a byte-budgeted LRU result
//! cache answering repeats without any engine time — both keyed by the
//! full operand content, so neither can change a bit.
//!
//! Two network frontends share one dispatch path and two codecs (the
//! hand-rolled JSON in [`wire`] and the length-prefixed binary frames in
//! [`binwire`], negotiated per frame by leading byte):
//!
//! - [`TcpServer`] — blocking, thread-per-connection over `std::net`.
//!   Simple enough to audit in one sitting; kept as the conformance
//!   oracle the event frontend is tested against.
//! - [`EventServer`] ([`reactor`]) — a single-threaded epoll event loop
//!   (raw syscalls, no dependencies) driving nonblocking sockets with
//!   pipelined requests per connection and backpressure wired to the
//!   admission queue: when the queue is full the reactor *stops
//!   reading* instead of rejecting, so overload surfaces to clients as
//!   TCP flow control.

pub mod binwire;
pub(crate) mod dedupe;
pub mod queue;
pub mod reactor;
pub mod request;
pub mod server;
pub mod stats;
pub mod tcp;
pub mod wire;

pub use queue::Ticket;
pub use reactor::EventServer;
pub use request::{GemmRequest, JobKind, ServeError, ServeOutput};
pub use server::{Client, Server, ServerConfig};
pub use stats::ServeStats;
pub use tcp::TcpServer;
