//! Zero-dependency wire protocol: length-prefixed JSON frames.
//!
//! Every message is one frame: a 4-byte big-endian payload length
//! followed by that many bytes of UTF-8 JSON. The JSON codec is
//! hand-rolled (this repo takes no external dependencies) around a
//! small [`Value`] tree; it is *not* a general-purpose JSON library —
//! it supports exactly what the protocol and the bench artifacts need:
//! objects, arrays, strings with escapes, `f64` numbers, booleans,
//! null.
//!
//! `f32` matrix elements cross the wire bit-exactly: each is widened to
//! `f64` (exact), printed with Rust's shortest-roundtrip formatter, and
//! parsed back to `f64` then narrowed to `f32` — an identity for every
//! finite value. Non-finite values are carried as the strings `"NaN"`,
//! `"Infinity"`, `"-Infinity"` (JSON has no literals for them); the
//! server's validation policy decides whether they are accepted.
//!
//! Request object (client → server):
//!
//! ```json
//! {"id": 1, "kind": "gemm", "m": 2, "k": 3, "n": 2,
//!  "a": [..m*k row-major..], "b": [..k*n..], "c": [..m*n.., optional],
//!  "scheme": "egemm_tc", "deadline_ms": 50, "slices": 4}
//! ```
//!
//! `kind` is `"gemm"`, `"split_k"` (with optional `"slices"`, `0` =
//! auto), `"stats"` (no other fields; answers a counters snapshot), or
//! `"metrics"` (no other fields; answers the Prometheus-style text
//! exposition of the process-wide metrics registry). `scheme` is
//! `"egemm_tc"` (default), `"markidis"`, `"markidis4"`, or `"tc_half"`.
//! Response object (server → client):
//!
//! ```json
//! {"id": 1, "ok": true, "request_id": 9, "m": 2, "n": 2, "d": [..m*n..],
//!  "batched_with": 3, "queue_ns": 120, "total_ns": 45000}
//! {"id": 1, "ok": false, "error": {"code": "busy", "message": "..."}}
//! ```
//!
//! An `ok` response carries `"report"` (the engine `GemmReport` as
//! JSON) when tracing is enabled; a `"stats"` request answers
//! `{"id":..,"ok":true,"stats":{..ServeStats..}}`; a `"metrics"`
//! request answers `{"id":..,"ok":true,"metrics":"<exposition text>"}`.

use crate::request::{GemmRequest, JobKind, ServeError, ServeOutput};
use crate::stats::ServeStats;
use egemm::EmulationScheme;
use egemm_matrix::Matrix;
use std::io::{Read, Write};

/// Upper bound on one frame's payload; a peer announcing more is
/// answered with an error and disconnected rather than allocated for.
pub const MAX_FRAME: usize = 64 << 20;

// ---------------------------------------------------------------------------
// JSON value tree
// ---------------------------------------------------------------------------

/// A parsed JSON value. Object keys keep insertion order (lookup is a
/// linear scan — protocol objects are small).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (`None` for missing keys and non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Value::Num(x) if *x >= 0.0 && x.fract() == 0.0 => Some(*x as usize),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Set or replace a field on an object (no-op on non-objects).
    pub fn set(&mut self, key: &str, value: Value) {
        if let Value::Obj(fields) = self {
            match fields.iter_mut().find(|(k, _)| k == key) {
                Some((_, v)) => *v = value,
                None => fields.push((key.to_string(), value)),
            }
        }
    }

    /// Serialize back to JSON text.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(x) => write_num(*x, out),
            Value::Str(s) => write_str(s, out),
            Value::Arr(xs) => {
                out.push('[');
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    x.write_json(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_num(x: f64, out: &mut String) {
    use std::fmt::Write as _;
    if !x.is_finite() {
        // Callers encode non-finite payload values as strings; a
        // non-finite *number* slipping in here still must not emit
        // invalid JSON.
        out.push_str("null");
    } else {
        // Shortest-roundtrip formatting: exact for every f64 (and so
        // for every widened f32), prints integral values without a
        // fraction, and keeps the sign of -0.0.
        let _ = write!(out, "{x}");
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse one JSON document (rejects trailing garbage).
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let Value::Str(key) = parse_value(b, pos)? else {
                    return Err(format!("object key is not a string at offset {pos}"));
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at offset {pos}"));
                }
                *pos += 1;
                let value = parse_value(b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(b, pos).map(Value::Str),
        Some(b't') => parse_lit(b, pos, "true").map(|()| Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false").map(|()| Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null").map(|()| Value::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("invalid literal at offset {pos}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("invalid number {text:?} at offset {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        // Surrogates are not reassembled; the protocol
                        // never emits them.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at offset {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is
                // always well-formed).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let ch = rest.chars().next().unwrap();
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Write one frame: 4-byte big-endian length, then the payload.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame. `Ok(None)` on clean EOF at a frame boundary; an
/// error for oversized frames or mid-frame EOF.
pub fn read_frame<R: Read>(r: &mut R) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte limit"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

// ---------------------------------------------------------------------------
// Matrix and scheme codecs
// ---------------------------------------------------------------------------

fn encode_f32(x: f32) -> Value {
    if x.is_finite() {
        Value::Num(f64::from(x))
    } else if x.is_nan() {
        Value::Str("NaN".into())
    } else if x > 0.0 {
        Value::Str("Infinity".into())
    } else {
        Value::Str("-Infinity".into())
    }
}

fn decode_f32(v: &Value) -> Result<f32, String> {
    match v {
        Value::Num(x) => Ok(*x as f32),
        Value::Str(s) => match s.as_str() {
            "NaN" => Ok(f32::NAN),
            "Infinity" => Ok(f32::INFINITY),
            "-Infinity" => Ok(f32::NEG_INFINITY),
            _ => Err(format!("expected a number, got the string {s:?}")),
        },
        _ => Err("expected a number".into()),
    }
}

/// Row-major flat encoding of a matrix.
pub fn encode_matrix(m: &Matrix<f32>) -> Value {
    Value::Arr(m.as_slice().iter().copied().map(encode_f32).collect())
}

/// Decode a `rows x cols` matrix from its flat row-major array.
pub fn decode_matrix(
    v: &Value,
    rows: usize,
    cols: usize,
    name: &str,
) -> Result<Matrix<f32>, String> {
    let Value::Arr(items) = v else {
        return Err(format!("{name} is not an array"));
    };
    if items.len() != rows * cols {
        return Err(format!(
            "{name} has {} elements, expected {rows}x{cols} = {}",
            items.len(),
            rows * cols
        ));
    }
    let data = items
        .iter()
        .map(decode_f32)
        .collect::<Result<Vec<f32>, String>>()
        .map_err(|e| format!("{name}: {e}"))?;
    Ok(Matrix::from_vec(rows, cols, data))
}

/// Wire name of an emulation scheme.
pub fn scheme_name(scheme: EmulationScheme) -> &'static str {
    match scheme {
        EmulationScheme::EgemmTc => "egemm_tc",
        EmulationScheme::Markidis => "markidis",
        EmulationScheme::MarkidisFourTerm => "markidis4",
        EmulationScheme::TcHalf => "tc_half",
    }
}

/// Parse a wire scheme name.
pub fn scheme_from_name(name: &str) -> Result<EmulationScheme, String> {
    match name {
        "egemm_tc" => Ok(EmulationScheme::EgemmTc),
        "markidis" => Ok(EmulationScheme::Markidis),
        "markidis4" => Ok(EmulationScheme::MarkidisFourTerm),
        "tc_half" => Ok(EmulationScheme::TcHalf),
        other => Err(format!(
            "unknown scheme {other:?} (expected egemm_tc, markidis, markidis4, or tc_half)"
        )),
    }
}

// ---------------------------------------------------------------------------
// Protocol messages
// ---------------------------------------------------------------------------

/// A decoded client frame.
pub enum WireRequest {
    /// A compute job to submit to the server.
    Job { id: u64, req: GemmRequest },
    /// A counters-snapshot query, answered inline by the connection
    /// handler.
    Stats { id: u64 },
    /// A metrics-exposition scrape, answered inline by the connection
    /// handler with the registry's Prometheus-style text.
    Metrics { id: u64 },
}

/// Encode a job request frame (the loadgen client side).
pub fn encode_request(id: u64, req: &GemmRequest) -> String {
    let shape = req.shape();
    let mut obj = Value::Obj(vec![
        ("id".into(), Value::Num(id as f64)),
        (
            "kind".into(),
            Value::Str(
                match req.kind {
                    JobKind::Gemm => "gemm",
                    JobKind::SplitK { .. } => "split_k",
                }
                .into(),
            ),
        ),
        ("m".into(), Value::Num(shape.m as f64)),
        ("k".into(), Value::Num(shape.k as f64)),
        ("n".into(), Value::Num(shape.n as f64)),
        ("scheme".into(), Value::Str(scheme_name(req.scheme).into())),
        ("a".into(), encode_matrix(&req.a)),
        ("b".into(), encode_matrix(&req.b)),
    ]);
    if let Some(c) = &req.c {
        obj.set("c", encode_matrix(c));
    }
    if let JobKind::SplitK { slices } = req.kind {
        obj.set("slices", Value::Num(slices as f64));
    }
    if let Some(d) = req.deadline {
        obj.set("deadline_ms", Value::Num(d.as_secs_f64() * 1e3));
    }
    obj.to_json()
}

/// Encode a stats-query frame.
pub fn encode_stats_request(id: u64) -> String {
    Value::Obj(vec![
        ("id".into(), Value::Num(id as f64)),
        ("kind".into(), Value::Str("stats".into())),
    ])
    .to_json()
}

/// Encode a metrics-scrape frame (the `METRICS` verb).
pub fn encode_metrics_request(id: u64) -> String {
    Value::Obj(vec![
        ("id".into(), Value::Num(id as f64)),
        ("kind".into(), Value::Str("metrics".into())),
    ])
    .to_json()
}

/// Decode one client frame into a [`WireRequest`].
pub fn decode_request(payload: &[u8]) -> Result<WireRequest, String> {
    let text = std::str::from_utf8(payload).map_err(|_| "frame is not UTF-8".to_string())?;
    let v = parse(text)?;
    let id = v
        .get("id")
        .and_then(Value::as_f64)
        .map(|x| x as u64)
        .unwrap_or(0);
    let kind = v
        .get("kind")
        .and_then(Value::as_str)
        .ok_or("missing \"kind\"")?;
    if kind == "stats" {
        return Ok(WireRequest::Stats { id });
    }
    if kind == "metrics" {
        return Ok(WireRequest::Metrics { id });
    }
    let dim = |key: &str| {
        v.get(key)
            .and_then(Value::as_usize)
            .ok_or(format!("missing or invalid \"{key}\""))
    };
    let (m, k, n) = (dim("m")?, dim("k")?, dim("n")?);
    let a = decode_matrix(v.get("a").ok_or("missing \"a\"")?, m, k, "a")?;
    let b = decode_matrix(v.get("b").ok_or("missing \"b\"")?, k, n, "b")?;
    let c = match v.get("c") {
        Some(cv) => Some(decode_matrix(cv, m, n, "c")?),
        None => None,
    };
    let scheme = match v.get("scheme") {
        Some(s) => scheme_from_name(s.as_str().ok_or("\"scheme\" is not a string")?)?,
        None => EmulationScheme::EgemmTc,
    };
    let job_kind = match kind {
        "gemm" => JobKind::Gemm,
        "split_k" => JobKind::SplitK {
            slices: v.get("slices").and_then(Value::as_usize).unwrap_or(0),
        },
        other => return Err(format!("unknown kind {other:?}")),
    };
    let deadline = v
        .get("deadline_ms")
        .and_then(Value::as_f64)
        .map(|ms| std::time::Duration::from_secs_f64((ms / 1e3).max(0.0)));
    Ok(WireRequest::Job {
        id,
        req: GemmRequest {
            a,
            b,
            c,
            kind: job_kind,
            scheme,
            deadline,
        },
    })
}

/// Encode the response to a served job.
pub fn encode_response(id: u64, result: &Result<ServeOutput, ServeError>) -> String {
    match result {
        Ok(out) => {
            let mut obj = Value::Obj(vec![
                ("id".into(), Value::Num(id as f64)),
                ("ok".into(), Value::Bool(true)),
                ("request_id".into(), Value::Num(out.request_id as f64)),
                ("m".into(), Value::Num(out.shape.m as f64)),
                ("n".into(), Value::Num(out.shape.n as f64)),
                ("d".into(), encode_matrix(&out.d)),
                ("batched_with".into(), Value::Num(out.batched_with as f64)),
                ("cached".into(), Value::Bool(out.cached)),
                ("queue_ns".into(), Value::Num(out.queue_ns as f64)),
                ("total_ns".into(), Value::Num(out.total_ns as f64)),
            ]);
            if let Some(report) = &out.report {
                if let Ok(r) = parse(&report.to_json()) {
                    obj.set("report", r);
                }
            }
            obj.to_json()
        }
        Err(e) => encode_error(id, e),
    }
}

/// Encode an error response (also used for undecodable frames).
pub fn encode_error(id: u64, e: &ServeError) -> String {
    let mut err = Value::Obj(vec![
        ("code".into(), Value::Str(e.code().into())),
        ("message".into(), Value::Str(e.to_string())),
    ]);
    match e {
        ServeError::Busy { queued } => err.set("queued", Value::Num(*queued as f64)),
        ServeError::TimedOut { after_dispatch } => {
            err.set("after_dispatch", Value::Bool(*after_dispatch));
        }
        _ => {}
    }
    Value::Obj(vec![
        ("id".into(), Value::Num(id as f64)),
        ("ok".into(), Value::Bool(false)),
        ("error".into(), err),
    ])
    .to_json()
}

/// Encode a metrics-exposition response. The exposition text travels as
/// one JSON string; newlines survive via the codec's `\n` escaping.
pub fn encode_metrics_response(id: u64, text: &str) -> String {
    Value::Obj(vec![
        ("id".into(), Value::Num(id as f64)),
        ("ok".into(), Value::Bool(true)),
        ("metrics".into(), Value::Str(text.into())),
    ])
    .to_json()
}

/// Encode a stats-snapshot response.
pub fn encode_stats_response(id: u64, stats: &ServeStats) -> String {
    let inner = parse(&stats.to_json()).expect("ServeStats::to_json is valid JSON");
    Value::Obj(vec![
        ("id".into(), Value::Num(id as f64)),
        ("ok".into(), Value::Bool(true)),
        ("stats".into(), inner),
    ])
    .to_json()
}

/// Decoded response on the client side.
pub struct WireResponse {
    pub id: u64,
    pub result: Result<ServeOutput, ServeError>,
}

/// Decode a server response frame (the loadgen client side). Stats
/// responses decode to an error here — the loadgen reads those with
/// [`parse`] directly.
pub fn decode_response(payload: &[u8]) -> Result<WireResponse, String> {
    use egemm_matrix::GemmShape;
    let text = std::str::from_utf8(payload).map_err(|_| "frame is not UTF-8".to_string())?;
    let v = parse(text)?;
    let id = v
        .get("id")
        .and_then(Value::as_f64)
        .map(|x| x as u64)
        .unwrap_or(0);
    let ok = v
        .get("ok")
        .and_then(Value::as_bool)
        .ok_or("missing \"ok\"")?;
    if !ok {
        let err = v.get("error").ok_or("error response without \"error\"")?;
        let code = err.get("code").and_then(Value::as_str).unwrap_or("engine");
        let message = err
            .get("message")
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_string();
        let e = match code {
            "busy" => ServeError::Busy {
                queued: err.get("queued").and_then(Value::as_usize).unwrap_or(0),
            },
            "timeout" => ServeError::TimedOut {
                after_dispatch: err
                    .get("after_dispatch")
                    .and_then(Value::as_bool)
                    .unwrap_or(false),
            },
            "invalid" => ServeError::Invalid(message),
            "shutdown" => ServeError::Shutdown,
            _ => ServeError::Engine(message),
        };
        return Ok(WireResponse { id, result: Err(e) });
    }
    let m = v
        .get("m")
        .and_then(Value::as_usize)
        .ok_or("missing \"m\"")?;
    let n = v
        .get("n")
        .and_then(Value::as_usize)
        .ok_or("missing \"n\"")?;
    let d = decode_matrix(v.get("d").ok_or("missing \"d\"")?, m, n, "d")?;
    Ok(WireResponse {
        id,
        result: Ok(ServeOutput {
            shape: GemmShape::new(m, n, 0),
            d,
            request_id: v
                .get("request_id")
                .and_then(Value::as_f64)
                .map(|x| x as u64)
                .unwrap_or(0),
            batched_with: v.get("batched_with").and_then(Value::as_usize).unwrap_or(1),
            cached: v.get("cached").and_then(Value::as_bool).unwrap_or(false),
            queue_ns: v.get("queue_ns").and_then(Value::as_f64).unwrap_or(0.0) as u64,
            total_ns: v.get("total_ns").and_then(Value::as_f64).unwrap_or(0.0) as u64,
            report: None,
        }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip_nested() {
        let text = r#"{"a": [1, 2.5, -3e2, "x\ny", true, null], "b": {"c": []}}"#;
        let v = parse(text).unwrap();
        let v2 = parse(&v.to_json()).unwrap();
        assert_eq!(v, v2);
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Arr(vec![])));
    }

    #[test]
    fn json_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}trailing").is_err());
        assert!(parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn f32_values_roundtrip_bit_exactly() {
        let cases = [
            0.0f32,
            -0.0,
            1.0,
            std::f32::consts::PI,
            f32::MIN_POSITIVE,
            f32::MAX,
            -1.1754944e-38,
            1e-45, // subnormal
            f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
        ];
        for x in cases {
            let v = parse(&encode_f32(x).to_json()).unwrap();
            let back = decode_f32(&v).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {back}");
        }
    }

    #[test]
    fn matrix_roundtrip_bit_exact() {
        let m = Matrix::<f32>::random_uniform(7, 5, 42);
        let v = parse(&encode_matrix(&m).to_json()).unwrap();
        let back = decode_matrix(&v, 7, 5, "m").unwrap();
        assert_eq!(m.as_slice(), back.as_slice());
    }

    #[test]
    fn frame_roundtrip_and_limits() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none());

        // Oversized announced length is rejected without allocating.
        let mut huge = std::io::Cursor::new(((MAX_FRAME + 1) as u32).to_be_bytes().to_vec());
        assert!(read_frame(&mut huge).is_err());
    }

    #[test]
    fn request_roundtrip() {
        let a = Matrix::<f32>::random_uniform(3, 4, 1);
        let b = Matrix::<f32>::random_uniform(4, 2, 2);
        let req = GemmRequest::gemm(a.clone(), b.clone())
            .with_deadline(std::time::Duration::from_millis(250));
        let frame = encode_request(7, &req);
        let WireRequest::Job { id, req: back } = decode_request(frame.as_bytes()).unwrap() else {
            panic!("expected a job");
        };
        assert_eq!(id, 7);
        assert_eq!(back.a.as_slice(), a.as_slice());
        assert_eq!(back.b.as_slice(), b.as_slice());
        assert_eq!(back.deadline, Some(std::time::Duration::from_millis(250)));
        assert_eq!(back.kind, JobKind::Gemm);
    }

    #[test]
    fn metrics_request_and_response_roundtrip() {
        let frame = encode_metrics_request(11);
        let WireRequest::Metrics { id } = decode_request(frame.as_bytes()).unwrap() else {
            panic!("expected a metrics request");
        };
        assert_eq!(id, 11);

        let text = "# TYPE egemm_gemm_calls_total counter\negemm_gemm_calls_total 3\n";
        let resp = parse(&encode_metrics_response(11, text)).unwrap();
        assert_eq!(resp.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(resp.get("metrics").and_then(Value::as_str), Some(text));
    }

    #[test]
    fn error_response_roundtrip() {
        let frame = encode_error(3, &ServeError::Busy { queued: 16 });
        let resp = decode_response(frame.as_bytes()).unwrap();
        assert_eq!(resp.id, 3);
        assert_eq!(resp.result.unwrap_err(), ServeError::Busy { queued: 16 });

        let frame = encode_error(
            4,
            &ServeError::TimedOut {
                after_dispatch: true,
            },
        );
        let resp = decode_response(frame.as_bytes()).unwrap();
        assert_eq!(
            resp.result.unwrap_err(),
            ServeError::TimedOut {
                after_dispatch: true
            }
        );
    }
}
