//! The server: admission, the bucketing scheduler thread, dispatch.

use crate::dedupe::{Attach, Follower, InFlightTable, ResultCache, ResultKey};
use crate::queue::{lock_unpoisoned, AdmissionQueue, BucketKey, Pending, Ticket, TicketInner};
use crate::request::{GemmRequest, JobKind, ServeError, ServeOutput};
use crate::stats::{reg, ServeStats, StatsInner};
use egemm::telemetry::{self, GemmReport, RequestTrace};
use egemm::Egemm;
use egemm_matrix::Matrix;
use std::any::Any;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Serving policy knobs. Defaults suit an interactive mixed-shape load;
/// the loadgen smoke profile shrinks the queue and stretches the window
/// to force the backpressure paths deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Admission queue bound; a full queue answers [`ServeError::Busy`].
    pub queue_cap: usize,
    /// Most requests coalesced into one engine call.
    pub max_batch: usize,
    /// How long the scheduler lingers after waking before it drains the
    /// queue, letting concurrent submitters join the same dispatch
    /// cycle (and therefore the same buckets). Zero dispatches eagerly.
    pub batch_window: Duration,
    /// Accept non-finite (NaN/Inf) operand values. Off by default: a
    /// NaN poisons every product it touches, so the serving tier
    /// rejects it at validation rather than burn engine time.
    pub allow_nonfinite: bool,
    /// Byte budget of the content-addressed result cache; `0` disables
    /// memoization entirely. Overridable per process via
    /// `EGEMM_SERVE_RESULT_CACHE_BYTES` (see [`ServerConfig::from_env`]).
    pub result_cache_bytes: usize,
    /// Coalesce identical concurrent requests into one engine dispatch
    /// (the in-flight dedupe table). On by default: the key covers the
    /// full content of every operand, so outputs are bit-identical
    /// either way and only the work count changes.
    pub dedupe: bool,
}

/// Default result-cache budget: big enough to absorb a hot working set
/// of repeated requests, small next to the engine's packed-operand
/// cache (256 MiB).
const DEFAULT_RESULT_CACHE_BYTES: usize = 32 << 20;

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            queue_cap: 256,
            max_batch: 64,
            batch_window: Duration::ZERO,
            allow_nonfinite: false,
            result_cache_bytes: DEFAULT_RESULT_CACHE_BYTES,
            dedupe: true,
        }
    }
}

impl ServerConfig {
    /// Defaults with environment overrides applied:
    /// `EGEMM_SERVE_RESULT_CACHE_BYTES` resizes (or, at `0`, disables)
    /// the memoized result cache. Follows the workspace-wide env
    /// contract ([`egemm::envcfg`]): read once, garbage ignored with one
    /// stderr warning.
    pub fn from_env() -> ServerConfig {
        use egemm::envcfg::{read_usize, warn_once, EnvNum};
        static WARN: std::sync::Once = std::sync::Once::new();
        let mut cfg = ServerConfig::default();
        match read_usize("EGEMM_SERVE_RESULT_CACHE_BYTES") {
            EnvNum::Unset => {}
            EnvNum::Parsed(v, _) => cfg.result_cache_bytes = v,
            EnvNum::Garbage(raw) => warn_once(&WARN, || {
                format!(
                    "egemm-serve: ignoring EGEMM_SERVE_RESULT_CACHE_BYTES={raw:?} \
                     (not a byte count); using {DEFAULT_RESULT_CACHE_BYTES}"
                )
            }),
        }
        cfg
    }
}

pub(crate) struct ServerInner {
    engine: Egemm,
    cfg: ServerConfig,
    queue: AdmissionQueue,
    stats: StatsInner,
    /// Source of process-unique request ids (starts at 1; 0 is never a
    /// valid id, so exporters can treat it as "untracked").
    next_request_id: AtomicU64,
    /// Keys with a primary currently queued or dispatched; identical
    /// concurrent requests attach here instead of enqueueing.
    inflight: InFlightTable,
    /// Memoized whole-result cache (content-addressed, byte-budgeted).
    results: ResultCache,
}

/// A primary's successful outcome as fanned to followers: the computed
/// product, how many requests shared the dispatch, and the dispatching
/// call's report if tracing collected one.
type PrimaryOk<'a> = (&'a Matrix<f32>, usize, Option<&'a Arc<GemmReport>>);

impl ServerInner {
    /// Serve counters plus the engine-side counters that live on the
    /// shared runtime: fused-pipeline staging savings and the
    /// work-stealing scheduler's steal / panel-reuse totals. Folding
    /// them in at snapshot time covers every dispatch through this
    /// server's engine without double-counting per request.
    fn stats_snapshot(&self) -> ServeStats {
        let mut s = self.stats.snapshot();
        let rt = self.engine.runtime();
        s.bytes_staging_saved = rt.cache_stats().bytes_staging_saved;
        let sched = rt.sched_stats();
        s.tiles_stolen = sched.tiles_stolen;
        s.panel_reuse_hits = sched.panel_reuse_hits;
        s.result_cache_hits = self.results.hits.load(Ordering::Relaxed);
        s.result_cache_misses = self.results.misses.load(Ordering::Relaxed);
        s.result_cache_evictions = self.results.evictions.load(Ordering::Relaxed);
        s.result_cache_bytes = self.results.resident_bytes();
        s
    }

    /// Clear `key`'s in-flight entry and fan the primary's outcome out to
    /// every follower. On success the result is memoized *before* the
    /// entry is cleared, so a concurrent identical submit observes one of
    /// the two layers (in-flight or cache) and never recomputes in the
    /// handover window while the cache is on.
    fn resolve(&self, key: &ResultKey, outcome: Result<PrimaryOk<'_>, &ServeError>) {
        if let Ok((d, _, _)) = outcome {
            self.results.insert(*key, d);
        }
        let followers = self.inflight.resolve(key);
        if followers.is_empty() {
            return;
        }
        let finished = Instant::now();
        for f in followers {
            match outcome {
                Err(e) => {
                    if matches!(e, ServeError::Engine(_)) {
                        StatsInner::bump(&self.stats.engine_failures);
                        reg::bump(reg::engine_failures);
                    }
                    f.ticket.fulfill(Err(e.clone()));
                }
                Ok((d, batched_with, report)) => {
                    // A follower may carry its own deadline even though
                    // the primary did not; honour it at delivery.
                    if f.deadline.is_some_and(|dl| dl <= finished) {
                        StatsInner::bump(&self.stats.timed_out_after);
                        reg::bump(reg::deadline_misses);
                        f.ticket.fulfill(Err(ServeError::TimedOut {
                            after_dispatch: true,
                        }));
                        continue;
                    }
                    let total_ns = finished.duration_since(f.admitted).as_nanos() as u64;
                    self.stats.record_latency(total_ns);
                    StatsInner::bump(&self.stats.completed);
                    reg::bump(reg::completed);
                    f.ticket.fulfill(Ok(ServeOutput {
                        d: d.clone(),
                        request_id: f.request_id,
                        shape: key.shape,
                        batched_with,
                        cached: false,
                        queue_ns: total_ns,
                        total_ns,
                        report: report.cloned(),
                    }));
                }
            }
        }
    }
}

/// A running serving instance: one scheduler thread over one shared
/// [`Egemm`] (and therefore one persistent runtime: pool + cache).
/// Dropping the server performs a graceful shutdown — every admitted
/// request is answered before the scheduler exits.
pub struct Server {
    inner: Arc<ServerInner>,
    sched: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Start a server around `engine`. The engine's runtime is shared
    /// by every dispatch, so bucket after bucket hits the same packed
    /// operand cache and parked worker pool.
    pub fn start(engine: Egemm, cfg: ServerConfig) -> Server {
        reg::touch_all();
        let inner = Arc::new(ServerInner {
            engine,
            queue: AdmissionQueue::new(cfg.queue_cap),
            stats: StatsInner::new(),
            next_request_id: AtomicU64::new(1),
            inflight: InFlightTable::default(),
            results: ResultCache::new(cfg.result_cache_bytes),
            cfg,
        });
        let sched_inner = Arc::clone(&inner);
        let sched = std::thread::Builder::new()
            .name("egemm-serve".into())
            .spawn(move || scheduler(&sched_inner))
            .expect("spawn serve scheduler");
        Server {
            inner,
            sched: Some(sched),
        }
    }

    /// A cloneable in-process submission handle.
    pub fn client(&self) -> Client {
        Client {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Snapshot of the serving counters.
    pub fn stats(&self) -> ServeStats {
        self.inner.stats_snapshot()
    }

    /// Graceful shutdown: stop admitting, drain everything already
    /// queued (every ticket is answered), join the scheduler.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        self.inner.queue.close();
        if let Some(h) = self.sched.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

/// In-process client handle. Clone freely; all clones feed one queue.
#[derive(Clone)]
pub struct Client {
    inner: Arc<ServerInner>,
}

impl Client {
    /// Validate and enqueue a request. Returns immediately: `Ok` with a
    /// [`Ticket`] to wait on, or the admission error ([`ServeError::Busy`],
    /// [`ServeError::Invalid`], [`ServeError::Shutdown`]).
    pub fn submit(&self, req: GemmRequest) -> Result<Ticket, ServeError> {
        let inner = &*self.inner;
        StatsInner::bump(&inner.stats.submitted);
        reg::bump(reg::requests);
        if let Err(msg) = validate(&req, inner.cfg.allow_nonfinite) {
            StatsInner::bump(&inner.stats.rejected_invalid);
            reg::bump(reg::invalid);
            return Err(ServeError::Invalid(msg));
        }
        let admitted = Instant::now();
        let request_id = inner.next_request_id.fetch_add(1, Ordering::Relaxed);
        let deadline = req.deadline.map(|d| admitted + d);
        let ticket = TicketInner::new();

        // Content-address the request once; the bucket key reuses the B
        // fingerprint so operands are hashed exactly one time each.
        let content = ResultKey::of(&req, kind_discriminant(&req));

        // Layer 1: memoized result cache. A hit answers without touching
        // the queue at all (and therefore works even under Busy).
        if let Some(d) = inner.results.get(&content) {
            reg::bump(reg::result_cache_hits);
            let total_ns = admitted.elapsed().as_nanos() as u64;
            inner.stats.record_latency(total_ns);
            StatsInner::bump(&inner.stats.completed);
            reg::bump(reg::completed);
            ticket.fulfill(Ok(ServeOutput {
                d: (*d).clone(),
                request_id,
                shape: content.shape,
                batched_with: 1,
                cached: true,
                queue_ns: 0,
                total_ns,
                report: None,
            }));
            return Ok(Ticket { inner: ticket });
        }
        if inner.results.enabled() {
            reg::bump(reg::result_cache_misses);
        }

        // Layer 2: in-flight dedupe. Attach to an identical primary (one
        // dispatch fans out to all of us) or become the primary.
        let result_key = if inner.cfg.dedupe {
            match inner
                .inflight
                .offer(content, deadline.is_some(), || Follower {
                    ticket: Arc::clone(&ticket),
                    admitted,
                    deadline,
                    request_id,
                }) {
                Attach::Followed => {
                    StatsInner::bump(&inner.stats.dedup_hits);
                    reg::bump(reg::dedup_hits);
                    StatsInner::bump(&inner.stats.admitted);
                    return Ok(Ticket { inner: ticket });
                }
                Attach::Primary => Some(content),
                Attach::Refused => None,
            }
        } else {
            None
        };

        let pending = Pending {
            key: BucketKey {
                shape: content.shape,
                scheme: content.scheme,
                b_fp: content.b_fp,
                kind: content.kind,
            },
            admitted,
            deadline,
            ticket: Arc::clone(&ticket),
            request_id,
            admitted_ns: telemetry::now_ns(),
            result_key,
            req,
        };
        match inner.queue.push(pending) {
            Ok(()) => {
                StatsInner::bump(&inner.stats.admitted);
                Ok(Ticket { inner: ticket })
            }
            Err(e) => {
                if matches!(e, ServeError::Busy { .. }) {
                    StatsInner::bump(&inner.stats.rejected_busy);
                    reg::bump(reg::busy_rejects);
                }
                // The primary never enqueued: clear its registration and
                // answer any follower that raced in with the same
                // admission verdict.
                if result_key.is_some() {
                    for f in inner.inflight.abort(&content) {
                        f.ticket.fulfill(Err(e.clone()));
                    }
                }
                Err(e)
            }
        }
    }

    /// Submit and block for the response.
    pub fn call(&self, req: GemmRequest) -> Result<ServeOutput, ServeError> {
        self.submit(req)?.wait()
    }

    /// Snapshot of the serving counters.
    pub fn stats(&self) -> ServeStats {
        self.inner.stats_snapshot()
    }

    /// The full Prometheus text exposition for this process: every
    /// engine and serve series in the registry, plus scrape-time gauges
    /// read off this server's engine runtime (cache and scheduler
    /// lifetime counters, which live on the runtime rather than in the
    /// registry). This is what the TCP frontend's `METRICS` verb
    /// returns.
    pub fn metrics_text(&self) -> String {
        use egemm::telemetry::metrics;
        if metrics::enabled() {
            let rt = self.inner.engine.runtime();
            let cache = rt.cache_stats();
            metrics::gauge("egemm_cache_hits").set(cache.hits as i64);
            metrics::gauge("egemm_cache_misses").set(cache.misses as i64);
            metrics::gauge("egemm_cache_resident_bytes").set(cache.bytes as i64);
            metrics::gauge("egemm_bytes_staging_saved").set(cache.bytes_staging_saved as i64);
            metrics::gauge("egemm_jit_code_bytes").set(cache.jit_code_bytes as i64);
            let sched = rt.sched_stats();
            metrics::gauge("egemm_sched_steals").set(sched.steals as i64);
            metrics::gauge("egemm_sched_tiles_stolen").set(sched.tiles_stolen as i64);
            metrics::gauge("egemm_panel_reuse_hits").set(sched.panel_reuse_hits as i64);
            reg::result_cache_bytes().set(self.inner.results.resident_bytes() as i64);
        }
        telemetry::render_prometheus()
    }
}

/// Admission-time validation: shape agreement and the finite-value
/// policy. Anything the engine would reject by panicking *for this
/// request alone* (e.g. a split-K slice count out of range) is instead
/// left to the dispatch panic barrier, which converts it into a
/// per-request [`ServeError::Engine`].
fn validate(req: &GemmRequest, allow_nonfinite: bool) -> Result<(), String> {
    let (m, k) = (req.a.rows(), req.a.cols());
    let (kb, n) = (req.b.rows(), req.b.cols());
    if m == 0 || k == 0 || n == 0 {
        return Err(format!("degenerate operands: A {m}x{k}, B {kb}x{n}"));
    }
    if k != kb {
        return Err(format!(
            "inner dimensions disagree: A is {m}x{k}, B is {kb}x{n}"
        ));
    }
    if let Some(c) = &req.c {
        if (c.rows(), c.cols()) != (m, n) {
            return Err(format!("C is {}x{}, expected {m}x{n}", c.rows(), c.cols()));
        }
    }
    if !allow_nonfinite {
        for (name, mat) in [
            ("A", Some(&req.a)),
            ("B", Some(&req.b)),
            ("C", req.c.as_ref()),
        ] {
            let Some(mat) = mat else { continue };
            if let Some(i) = mat.as_slice().iter().position(|x| !x.is_finite()) {
                return Err(format!(
                    "non-finite value {} in {name} at flat index {i} \
                     (finite-only policy; see ServerConfig::allow_nonfinite)",
                    mat.as_slice()[i]
                ));
            }
        }
    }
    Ok(())
}

/// Kind discriminant shared by [`BucketKey`] and [`ResultKey`]:
/// 0 = batchable gemm, 1 = gemm-with-C, split-K folds the slice count in.
fn kind_discriminant(req: &GemmRequest) -> u64 {
    match req.kind {
        JobKind::Gemm if req.c.is_none() => 0,
        JobKind::Gemm => 1,
        JobKind::SplitK { slices } => 2 | ((slices as u64) << 2),
    }
}

#[cfg(test)]
fn bucket_key(req: &GemmRequest) -> BucketKey {
    BucketKey {
        shape: req.shape(),
        scheme: req.scheme,
        b_fp: egemm::content_fingerprint(req.b.as_slice()),
        kind: kind_discriminant(req),
    }
}

/// Scheduler thread body. The inner loop is wrapped in a panic barrier:
/// if a cycle somehow unwinds outside the per-dispatch barrier, every
/// request it was holding is answered with [`ServeError::Engine`] and
/// the loop restarts — the server never silently stops answering.
fn scheduler(inner: &ServerInner) {
    loop {
        let exited = catch_unwind(AssertUnwindSafe(|| scheduler_loop(inner)));
        match exited {
            Ok(()) => return, // clean shutdown drain finished
            Err(_) => {
                // Answer anything still queued, then resume serving.
                let drained: Vec<Pending> = {
                    let mut st = lock_unpoisoned(&inner.queue.state);
                    st.queue.drain(..).collect()
                };
                for p in drained {
                    StatsInner::bump(&inner.stats.engine_failures);
                    let err =
                        ServeError::Engine("scheduler cycle panicked; request abandoned".into());
                    if let Some(k) = &p.result_key {
                        inner.resolve(k, Err(&err));
                    }
                    p.ticket.fulfill(Err(err));
                }
            }
        }
    }
}

fn scheduler_loop(inner: &ServerInner) {
    loop {
        let snapshot: Vec<Pending> = {
            let mut st = lock_unpoisoned(&inner.queue.state);
            loop {
                if !st.queue.is_empty() {
                    break;
                }
                if st.shutdown {
                    return;
                }
                st = inner
                    .queue
                    .work
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            if !inner.cfg.batch_window.is_zero() && !st.shutdown {
                // Linger so concurrent submitters join this cycle: drop
                // the lock (admission must stay open), sleep, re-take.
                drop(st);
                std::thread::sleep(inner.cfg.batch_window);
                st = lock_unpoisoned(&inner.queue.state);
            }
            let drained: Vec<Pending> = st.queue.drain(..).collect();
            reg::set_queue_depth(st.queue.len());
            drained
        };
        dispatch_cycle(inner, snapshot);
    }
}

/// Group one queue snapshot into buckets (arrival order preserved both
/// across and within buckets) and dispatch each.
fn dispatch_cycle(inner: &ServerInner, snapshot: Vec<Pending>) {
    let mut order: Vec<(BucketKey, Vec<Pending>)> = Vec::new();
    let mut index: HashMap<BucketKey, usize> = HashMap::new();
    for p in snapshot {
        match index.get(&p.key) {
            Some(&i) => order[i].1.push(p),
            None => {
                index.insert(p.key, order.len());
                order.push((p.key, vec![p]));
            }
        }
    }
    for (key, bucket) in order {
        let mut rest = bucket;
        while !rest.is_empty() {
            let take = rest.len().min(inner.cfg.max_batch.max(1));
            let chunk: Vec<Pending> = rest.drain(..take).collect();
            dispatch_chunk(inner, key, chunk);
        }
    }
}

/// Dispatch one bucket chunk as a single engine call (or a short run of
/// single calls for non-batchable kinds), honouring deadlines on both
/// sides of the call and converting engine panics into per-request
/// errors.
/// Per-request metadata retained across the engine call (the matrices
/// themselves move into the call and are lost on a panic).
struct Meta {
    ticket: Arc<TicketInner>,
    admitted: Instant,
    deadline: Option<Instant>,
    request_id: u64,
    admitted_ns: u64,
    /// `Some` when this request is the dedupe primary for its content
    /// key — every outcome below must route through `ServerInner::resolve`.
    result_key: Option<ResultKey>,
}

fn dispatch_chunk(inner: &ServerInner, key: BucketKey, chunk: Vec<Pending>) {
    // Pre-dispatch deadline check: expired requests cost no engine time.
    let now = Instant::now();
    let mut live: Vec<Pending> = Vec::with_capacity(chunk.len());
    for p in chunk {
        if p.deadline.is_some_and(|d| d <= now) {
            StatsInner::bump(&inner.stats.timed_out_before);
            reg::bump(reg::deadline_misses);
            let err = ServeError::TimedOut {
                after_dispatch: false,
            };
            // A deadline-carrying primary has no followers (fate-sharing
            // rule) but still owns an in-flight entry to clear.
            if let Some(k) = &p.result_key {
                inner.resolve(k, Err(&err));
            }
            p.ticket.fulfill(Err(err));
        } else {
            live.push(p);
        }
    }
    if live.is_empty() {
        return;
    }

    // Tear the metadata off before the matrices move into the engine
    // closure: on a panic the operands are lost mid-call, but every
    // ticket must still be answered.
    let batched_with = live.len();
    let dispatched_at = Instant::now();
    let dispatched_ns = telemetry::now_ns();
    let metas: Vec<Meta> = live
        .iter()
        .map(|p| Meta {
            ticket: Arc::clone(&p.ticket),
            admitted: p.admitted,
            deadline: p.deadline,
            request_id: p.request_id,
            admitted_ns: p.admitted_ns,
            result_key: p.result_key,
        })
        .collect();
    let reqs: Vec<GemmRequest> = live.into_iter().map(|p| p.req).collect();

    StatsInner::bump(&inner.stats.engine_calls);
    reg::bump(reg::engine_calls);
    let engine = inner.engine.clone().with_scheme(key.scheme);
    let result = catch_unwind(AssertUnwindSafe(|| run_engine(&engine, key, reqs)));

    match result {
        Ok((ds, report)) => {
            let finished = Instant::now();
            debug_assert_eq!(ds.len(), metas.len());
            // Stamp the serve-side request timeline into the engine's
            // trace report before sharing it, so exporters can draw
            // per-request spans and flow arrows into the engine lanes.
            let report = report.map(|mut rep| {
                rep.requests = metas
                    .iter()
                    .map(|m| RequestTrace {
                        id: m.request_id,
                        admitted_ns: m.admitted_ns,
                        dispatched_ns,
                    })
                    .collect();
                Arc::new(rep)
            });
            for (d, meta) in ds.into_iter().zip(metas) {
                let total_ns = finished.duration_since(meta.admitted).as_nanos() as u64;
                inner.stats.record_latency(total_ns);
                StatsInner::bump(&inner.stats.dispatched);
                reg::bump(reg::dispatched);
                if batched_with >= 2 {
                    StatsInner::bump(&inner.stats.coalesced);
                    reg::bump(reg::batched_requests);
                }
                // Memoize and fan out to followers before `d` moves into
                // the primary's own response.
                if let Some(k) = &meta.result_key {
                    inner.resolve(k, Ok((&d, batched_with, report.as_ref())));
                }
                if meta.deadline.is_some_and(|dl| dl <= finished) {
                    StatsInner::bump(&inner.stats.timed_out_after);
                    reg::bump(reg::deadline_misses);
                    meta.ticket.fulfill(Err(ServeError::TimedOut {
                        after_dispatch: true,
                    }));
                } else {
                    StatsInner::bump(&inner.stats.completed);
                    reg::bump(reg::completed);
                    meta.ticket.fulfill(Ok(ServeOutput {
                        shape: key.shape,
                        d,
                        request_id: meta.request_id,
                        batched_with,
                        cached: false,
                        queue_ns: dispatched_at.duration_since(meta.admitted).as_nanos() as u64,
                        total_ns,
                        report: report.clone(),
                    }));
                }
            }
        }
        Err(payload) => {
            let msg = panic_message(&payload);
            let err = ServeError::Engine(msg);
            for meta in metas {
                StatsInner::bump(&inner.stats.engine_failures);
                reg::bump(reg::engine_failures);
                if let Some(k) = &meta.result_key {
                    inner.resolve(k, Err(&err));
                }
                meta.ticket.fulfill(Err(err.clone()));
            }
        }
    }
}

/// The actual engine call for one chunk: batched for compatible plain
/// GEMMs, per-request otherwise. Returns per-request products in input
/// order plus the (shared) telemetry report.
#[allow(clippy::type_complexity)]
fn run_engine(
    engine: &Egemm,
    key: BucketKey,
    reqs: Vec<GemmRequest>,
) -> (Vec<Matrix<f32>>, Option<GemmReport>) {
    if key.kind == 0 && reqs.len() > 1 {
        let mut a = Vec::with_capacity(reqs.len());
        let mut b = Vec::with_capacity(reqs.len());
        for r in reqs {
            a.push(r.a);
            b.push(r.b);
        }
        let out = engine.gemm_batched(&a, &b);
        (out.d, out.report)
    } else {
        let mut ds = Vec::with_capacity(reqs.len());
        let mut report = None;
        for r in reqs {
            match r.kind {
                JobKind::Gemm => {
                    let out = engine.gemm_with_c(&r.a, &r.b, r.c.as_ref());
                    report = out.report.or(report);
                    ds.push(out.d);
                }
                JobKind::SplitK { slices } => {
                    let out = engine.gemm_split_k(&r.a, &r.b, slices);
                    report = out.report.or(report);
                    ds.push(out.d);
                }
            }
        }
        (ds, report)
    }
}

fn panic_message(payload: &Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "engine call panicked (non-string payload)".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egemm::TilingConfig;
    use egemm_tcsim::DeviceSpec;

    fn server(cfg: ServerConfig) -> Server {
        Server::start(Egemm::new(DeviceSpec::t4(), TilingConfig::T4_PAPER), cfg)
    }

    #[test]
    fn serves_a_simple_request() {
        let s = server(ServerConfig::default());
        let c = s.client();
        let a = Matrix::<f32>::random_uniform(8, 8, 1);
        let b = Matrix::<f32>::random_uniform(8, 8, 2);
        let out = c.call(GemmRequest::gemm(a, b)).expect("served");
        assert_eq!((out.d.rows(), out.d.cols()), (8, 8));
        assert_eq!(out.batched_with, 1);
        assert!(out.total_ns >= out.queue_ns);
        let stats = s.stats();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.engine_calls, 1);
        // The default engine runs the fused split-and-pack pipeline, and
        // its avoided-staging counter surfaces through the serve stats
        // (and therefore the in-band "stats" wire reply).
        assert!(
            stats.bytes_staging_saved > 0,
            "fused engine should report staging savings: {stats:?}"
        );
        let j = stats.to_json();
        assert!(j.contains("\"bytes_staging_saved\":"), "{j}");
        // Scheduler counters surface the same way (runtime snapshot).
        assert!(j.contains("\"tiles_stolen\":"), "{j}");
        assert!(j.contains("\"panel_reuse_hits\":"), "{j}");
        s.shutdown();
    }

    #[test]
    fn validation_rejects_shape_mismatch_and_nan() {
        let s = server(ServerConfig::default());
        let c = s.client();
        let err = c
            .call(GemmRequest::gemm(Matrix::zeros(4, 5), Matrix::zeros(4, 4)))
            .unwrap_err();
        assert!(matches!(err, ServeError::Invalid(_)), "{err}");

        let mut a = Matrix::<f32>::zeros(2, 2);
        a.set(1, 1, f32::NAN);
        let err = c
            .call(GemmRequest::gemm(a, Matrix::zeros(2, 2)))
            .unwrap_err();
        assert!(
            matches!(err, ServeError::Invalid(ref m) if m.contains("non-finite")),
            "{err}"
        );
        assert_eq!(s.stats().rejected_invalid, 2);
        s.shutdown();
    }

    #[test]
    fn submit_after_shutdown_is_rejected() {
        let s = server(ServerConfig::default());
        let c = s.client();
        s.shutdown();
        let a = Matrix::<f32>::random_uniform(4, 4, 1);
        let b = Matrix::<f32>::random_uniform(4, 4, 2);
        assert_eq!(
            c.call(GemmRequest::gemm(a, b)).unwrap_err(),
            ServeError::Shutdown
        );
    }

    #[test]
    fn bucket_key_distinguishes_content_and_scheme() {
        use egemm::EmulationScheme;
        let a = Matrix::<f32>::random_uniform(4, 6, 1);
        let b1 = Matrix::<f32>::random_uniform(6, 5, 2);
        let b2 = Matrix::<f32>::random_uniform(6, 5, 3);
        let r1 = GemmRequest::gemm(a.clone(), b1.clone());
        let r1b = GemmRequest::gemm(a.clone(), b1.clone());
        let r2 = GemmRequest::gemm(a.clone(), b2);
        let r3 = GemmRequest::gemm(a, b1).with_scheme(EmulationScheme::Markidis);
        assert_eq!(bucket_key(&r1), bucket_key(&r1b));
        assert_ne!(bucket_key(&r1), bucket_key(&r2), "content must separate");
        assert_ne!(bucket_key(&r1), bucket_key(&r3), "scheme must separate");
    }
}
