//! Compact binary wire codec, negotiated per frame.
//!
//! The transport framing is identical to the JSON protocol (4-byte
//! big-endian length prefix, [`crate::wire::read_frame`] /
//! [`crate::wire::write_frame`]); only the payload differs. A binary
//! payload starts with the magic byte [`MAGIC`] (`0xEB`), which can
//! never open a JSON document, so the server distinguishes the codecs
//! by the first payload byte and always answers in the codec the
//! request arrived in — connections may mix codecs frame by frame, and
//! "negotiation" needs no handshake.
//!
//! Why a second codec: JSON carries every f32 as shortest-roundtrip
//! decimal text (~2.5x the bytes, plus parse cost per element). The
//! binary encoding ships operand payloads as raw little-endian f32 —
//! *bit-exact by construction*, including NaN payloads, infinities, and
//! subnormals — so the wire can never perturb a value the engine's
//! bit-identity guarantee covers.
//!
//! Payload layout (all integers little-endian after the 4-byte header):
//!
//! ```text
//! [0] MAGIC 0xEB   [1] VERSION 1   [2] type   [3] flags (reserved, 0)
//! type 1 job:      id:u64 scheme:u8 kind:u8 slices:u32 deadline_ns:u64
//!                  m:u32 k:u32 n:u32  A[m*k] B[k*n] (C[m*n] if kind=1)
//!                  (f32 LE, row-major; deadline_ns 0 = no deadline)
//! type 2 ok:       id:u64 request_id:u64 m:u32 n:u32 batched_with:u32
//!                  cached:u8 queue_ns:u64 total_ns:u64  D[m*n]
//! type 3 error:    id:u64 code:u8 aux:u64 msg_len:u32 msg[..] (UTF-8)
//! type 4 stats:    id:u64                 (request; answered as type 6)
//! type 5 metrics:  id:u64                 (request; answered as type 6)
//! type 6 text:     id:u64 text_len:u32 text[..]   (stats JSON or
//!                  Prometheus exposition, UTF-8)
//! ```
//!
//! Job `kind`: 0 = gemm, 1 = gemm-with-C, 2 = split-K (`slices` used).
//! Error `code`: 0 busy (`aux` = queued), 1 timeout (`aux` = 1 when
//! after dispatch), 2 invalid, 3 engine, 4 shutdown.

use crate::request::{GemmRequest, JobKind, ServeError, ServeOutput};
use crate::wire::{scheme_from_name, scheme_name, WireRequest, WireResponse, MAX_FRAME};
use egemm_matrix::{GemmShape, Matrix};
use std::time::Duration;

/// First payload byte of every binary frame. JSON payloads start with
/// `{` or whitespace, never `0xEB` (not valid leading UTF-8 either).
pub const MAGIC: u8 = 0xEB;
/// Codec version; bumped on any layout change.
pub const VERSION: u8 = 1;

const TYPE_JOB: u8 = 1;
const TYPE_OK: u8 = 2;
const TYPE_ERROR: u8 = 3;
const TYPE_STATS: u8 = 4;
const TYPE_METRICS: u8 = 5;
const TYPE_TEXT: u8 = 6;

/// Whether a frame payload is binary (vs JSON), by leading byte.
pub fn is_binary(payload: &[u8]) -> bool {
    payload.first() == Some(&MAGIC)
}

// --------------------------------------------------------------------
// Little-endian write/read helpers over a plain byte buffer.
// --------------------------------------------------------------------

fn header(msg_type: u8) -> Vec<u8> {
    vec![MAGIC, VERSION, msg_type, 0]
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f32s(buf: &mut Vec<u8>, vals: &[f32]) {
    buf.reserve(vals.len() * 4);
    for v in vals {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// Bounds-checked reader over one payload.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| {
                format!(
                    "binary frame truncated: wanted {n} bytes at offset {}, have {}",
                    self.pos,
                    self.buf.len()
                )
            })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn matrix(&mut self, rows: usize, cols: usize, name: &str) -> Result<Matrix<f32>, String> {
        let count = rows
            .checked_mul(cols)
            .filter(|&c| c.checked_mul(4).is_some_and(|b| b <= MAX_FRAME))
            .ok_or_else(|| format!("{name} dimensions {rows}x{cols} overflow the frame limit"))?;
        let bytes = self.take(count * 4).map_err(|e| format!("{name}: {e}"))?;
        let data = bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        Ok(Matrix::from_vec(rows, cols, data))
    }

    fn finish(&self) -> Result<(), String> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(format!(
                "binary frame has {} trailing bytes",
                self.buf.len() - self.pos
            ))
        }
    }
}

/// Check magic/version and return the message type.
fn open(payload: &[u8]) -> Result<(u8, Reader<'_>), String> {
    if payload.len() < 4 || payload[0] != MAGIC {
        return Err("not a binary frame (missing 0xEB magic)".into());
    }
    if payload[1] != VERSION {
        return Err(format!(
            "unsupported binary codec version {} (this build speaks {VERSION})",
            payload[1]
        ));
    }
    let mut r = Reader::new(payload);
    r.pos = 4;
    Ok((payload[2], r))
}

fn scheme_code(scheme: egemm::EmulationScheme) -> u8 {
    // Reuse the wire-name table as the single source of scheme identity
    // so the two codecs can never drift apart.
    match scheme_name(scheme) {
        "egemm_tc" => 0,
        "markidis" => 1,
        "markidis4" => 2,
        _ => 3, // tc_half
    }
}

fn scheme_from_code(code: u8) -> Result<egemm::EmulationScheme, String> {
    let name = match code {
        0 => "egemm_tc",
        1 => "markidis",
        2 => "markidis4",
        3 => "tc_half",
        other => return Err(format!("unknown scheme code {other}")),
    };
    scheme_from_name(name)
}

// --------------------------------------------------------------------
// Requests
// --------------------------------------------------------------------

/// Encode a job request.
pub fn encode_request(id: u64, req: &GemmRequest) -> Vec<u8> {
    let shape = req.shape();
    let (kind, slices) = match req.kind {
        JobKind::Gemm if req.c.is_none() => (0u8, 0u32),
        JobKind::Gemm => (1, 0),
        JobKind::SplitK { slices } => (2, slices as u32),
    };
    let mut buf = header(TYPE_JOB);
    put_u64(&mut buf, id);
    buf.push(scheme_code(req.scheme));
    buf.push(kind);
    put_u32(&mut buf, slices);
    put_u64(&mut buf, req.deadline.map_or(0, |d| d.as_nanos() as u64));
    put_u32(&mut buf, shape.m as u32);
    put_u32(&mut buf, shape.k as u32);
    put_u32(&mut buf, shape.n as u32);
    put_f32s(&mut buf, req.a.as_slice());
    put_f32s(&mut buf, req.b.as_slice());
    if let Some(c) = &req.c {
        put_f32s(&mut buf, c.as_slice());
    }
    buf
}

/// Encode a stats-query frame.
pub fn encode_stats_request(id: u64) -> Vec<u8> {
    let mut buf = header(TYPE_STATS);
    put_u64(&mut buf, id);
    buf
}

/// Encode a metrics-scrape frame.
pub fn encode_metrics_request(id: u64) -> Vec<u8> {
    let mut buf = header(TYPE_METRICS);
    put_u64(&mut buf, id);
    buf
}

/// Decode one binary client frame into the codec-neutral [`WireRequest`].
pub fn decode_request(payload: &[u8]) -> Result<WireRequest, String> {
    let (msg_type, mut r) = open(payload)?;
    match msg_type {
        TYPE_STATS => Ok(WireRequest::Stats { id: r.u64()? }),
        TYPE_METRICS => Ok(WireRequest::Metrics { id: r.u64()? }),
        TYPE_JOB => {
            let id = r.u64()?;
            let scheme = scheme_from_code(r.u8()?)?;
            let kind_code = r.u8()?;
            let slices = r.u32()? as usize;
            let deadline_ns = r.u64()?;
            let m = r.u32()? as usize;
            let k = r.u32()? as usize;
            let n = r.u32()? as usize;
            let a = r.matrix(m, k, "A")?;
            let b = r.matrix(k, n, "B")?;
            let (kind, c) = match kind_code {
                0 => (JobKind::Gemm, None),
                1 => (JobKind::Gemm, Some(r.matrix(m, n, "C")?)),
                2 => (JobKind::SplitK { slices }, None),
                other => return Err(format!("unknown job kind {other}")),
            };
            r.finish()?;
            Ok(WireRequest::Job {
                id,
                req: GemmRequest {
                    a,
                    b,
                    c,
                    kind,
                    scheme,
                    deadline: (deadline_ns > 0).then(|| Duration::from_nanos(deadline_ns)),
                },
            })
        }
        other => Err(format!("unexpected binary message type {other}")),
    }
}

// --------------------------------------------------------------------
// Responses
// --------------------------------------------------------------------

fn error_fields(e: &ServeError) -> (u8, u64) {
    match e {
        ServeError::Busy { queued } => (0, *queued as u64),
        ServeError::TimedOut { after_dispatch } => (1, u64::from(*after_dispatch)),
        ServeError::Invalid(_) => (2, 0),
        ServeError::Engine(_) => (3, 0),
        ServeError::Shutdown => (4, 0),
    }
}

/// Encode a job response (either arm).
pub fn encode_response(id: u64, result: &Result<ServeOutput, ServeError>) -> Vec<u8> {
    match result {
        Ok(out) => {
            let mut buf = header(TYPE_OK);
            put_u64(&mut buf, id);
            put_u64(&mut buf, out.request_id);
            put_u32(&mut buf, out.shape.m as u32);
            put_u32(&mut buf, out.shape.n as u32);
            put_u32(&mut buf, out.batched_with as u32);
            buf.push(u8::from(out.cached));
            put_u64(&mut buf, out.queue_ns);
            put_u64(&mut buf, out.total_ns);
            put_f32s(&mut buf, out.d.as_slice());
            buf
        }
        Err(e) => encode_error(id, e),
    }
}

/// Encode an error response (also used for undecodable binary frames).
pub fn encode_error(id: u64, e: &ServeError) -> Vec<u8> {
    let (code, aux) = error_fields(e);
    let msg = e.to_string();
    let mut buf = header(TYPE_ERROR);
    put_u64(&mut buf, id);
    buf.push(code);
    put_u64(&mut buf, aux);
    put_u32(&mut buf, msg.len() as u32);
    buf.extend_from_slice(msg.as_bytes());
    buf
}

/// Encode a text response (stats JSON or metrics exposition).
pub fn encode_text_response(id: u64, text: &str) -> Vec<u8> {
    let mut buf = header(TYPE_TEXT);
    put_u64(&mut buf, id);
    put_u32(&mut buf, text.len() as u32);
    buf.extend_from_slice(text.as_bytes());
    buf
}

/// Decode a binary server response (the loadgen client side). Text
/// responses (stats/metrics) decode to an error here, mirroring
/// [`crate::wire::decode_response`].
pub fn decode_response(payload: &[u8]) -> Result<WireResponse, String> {
    let (msg_type, mut r) = open(payload)?;
    match msg_type {
        TYPE_OK => {
            let id = r.u64()?;
            let request_id = r.u64()?;
            let m = r.u32()? as usize;
            let n = r.u32()? as usize;
            let batched_with = r.u32()? as usize;
            let cached = r.u8()? != 0;
            let queue_ns = r.u64()?;
            let total_ns = r.u64()?;
            let d = r.matrix(m, n, "D")?;
            r.finish()?;
            Ok(WireResponse {
                id,
                result: Ok(ServeOutput {
                    d,
                    request_id,
                    shape: GemmShape::new(m, n, 0),
                    batched_with,
                    cached,
                    queue_ns,
                    total_ns,
                    report: None,
                }),
            })
        }
        TYPE_ERROR => {
            let id = r.u64()?;
            let code = r.u8()?;
            let aux = r.u64()?;
            let msg_len = r.u32()? as usize;
            let msg = String::from_utf8_lossy(r.take(msg_len)?).into_owned();
            let e = match code {
                0 => ServeError::Busy {
                    queued: aux as usize,
                },
                1 => ServeError::TimedOut {
                    after_dispatch: aux != 0,
                },
                2 => ServeError::Invalid(msg),
                4 => ServeError::Shutdown,
                _ => ServeError::Engine(msg),
            };
            Ok(WireResponse { id, result: Err(e) })
        }
        other => Err(format!("unexpected binary response type {other}")),
    }
}

/// Decode a binary text response (stats/metrics), returning `(id, text)`.
pub fn decode_text_response(payload: &[u8]) -> Result<(u64, String), String> {
    let (msg_type, mut r) = open(payload)?;
    if msg_type != TYPE_TEXT {
        return Err(format!("expected text response, got type {msg_type}"));
    }
    let id = r.u64()?;
    let len = r.u32()? as usize;
    let text = std::str::from_utf8(r.take(len)?)
        .map_err(|_| "text response is not UTF-8".to_string())?
        .to_string();
    Ok((id, text))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_roundtrip_preserves_every_bit() {
        let mut a = Matrix::<f32>::random_uniform(3, 4, 7);
        a.set(0, 0, f32::NAN);
        a.set(1, 2, f32::NEG_INFINITY);
        a.set(2, 3, f32::from_bits(1)); // smallest subnormal
        let b = Matrix::<f32>::random_uniform(4, 5, 8);
        let req = GemmRequest {
            a: a.clone(),
            b: b.clone(),
            c: None,
            kind: JobKind::SplitK { slices: 3 },
            scheme: egemm::EmulationScheme::Markidis,
            deadline: Some(Duration::from_millis(250)),
        };
        let frame = encode_request(42, &req);
        assert!(is_binary(&frame));
        let WireRequest::Job { id, req: back } = decode_request(&frame).unwrap() else {
            panic!("expected a job");
        };
        assert_eq!(id, 42);
        let bits = |m: &Matrix<f32>| m.as_slice().iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&back.a), bits(&a), "A bit-exact incl. NaN payload");
        assert_eq!(bits(&back.b), bits(&b));
        assert_eq!(back.kind, JobKind::SplitK { slices: 3 });
        assert_eq!(back.scheme, egemm::EmulationScheme::Markidis);
        assert_eq!(back.deadline, Some(Duration::from_millis(250)));
    }

    #[test]
    fn truncated_and_alien_frames_are_rejected() {
        let req = GemmRequest::gemm(Matrix::zeros(2, 2), Matrix::zeros(2, 2));
        let frame = encode_request(1, &req);
        assert!(decode_request(&frame[..frame.len() - 1]).is_err());
        assert!(decode_request(b"{\"id\":1}").is_err(), "JSON is not binary");
        let mut wrong_version = frame.clone();
        wrong_version[1] = 9;
        assert!(decode_request(&wrong_version).is_err());
        let mut trailing = frame;
        trailing.push(0);
        assert!(decode_request(&trailing).is_err(), "trailing bytes");
    }

    #[test]
    fn error_roundtrip() {
        for e in [
            ServeError::Busy { queued: 7 },
            ServeError::TimedOut {
                after_dispatch: true,
            },
            ServeError::Invalid("bad".into()),
            ServeError::Engine("boom".into()),
            ServeError::Shutdown,
        ] {
            let frame = encode_response(9, &Err(e.clone()));
            let resp = decode_response(&frame).unwrap();
            assert_eq!(resp.id, 9);
            let back = resp.result.unwrap_err();
            // The message travels as Display text (same as JSON), so
            // compare the structured parts.
            assert_eq!(back.code(), e.code());
            match (&back, &e) {
                (ServeError::Busy { queued: a }, ServeError::Busy { queued: b }) => {
                    assert_eq!(a, b)
                }
                (
                    ServeError::TimedOut { after_dispatch: a },
                    ServeError::TimedOut { after_dispatch: b },
                ) => assert_eq!(a, b),
                _ => {}
            }
        }
    }

    #[test]
    fn text_roundtrip() {
        let frame = encode_text_response(5, "egemm_serve_requests_total 3\n");
        let (id, text) = decode_text_response(&frame).unwrap();
        assert_eq!(id, 5);
        assert!(text.ends_with('\n'));
    }
}
