//! TCP frontend: thread-per-connection over `std::net`.
//!
//! The listener runs nonblocking with a short sleep-poll so shutdown is
//! prompt without platform-specific wakeup machinery. Each accepted
//! connection gets a handler thread that reads request frames
//! ([`crate::wire`]), submits jobs through the in-process
//! [`Client`] — so TCP requests mix into the same admission queue and
//! buckets as in-process ones — and writes one response frame per
//! request, in order. `"stats"` and `"metrics"` queries are answered
//! inline without touching the queue.

use crate::binwire;
use crate::server::Client;
use crate::wire;
use std::io::BufReader;
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Accept-loop poll interval (shutdown latency upper bound).
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// A running TCP frontend bound to one listener.
pub struct TcpServer {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<Vec<JoinHandle<()>>>>,
}

impl TcpServer {
    /// Bind and start accepting. Pass `"127.0.0.1:0"` to let the OS
    /// pick a free port (read it back with [`TcpServer::local_addr`]).
    pub fn bind<A: ToSocketAddrs>(addr: A, client: Client) -> std::io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_accept = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("egemm-serve-tcp".into())
            .spawn(move || accept_loop(&listener, &client, &stop_accept))
            .expect("spawn tcp accept loop");
        Ok(TcpServer {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stop accepting, then join every connection handler (each exits
    /// when its peer disconnects — clients should close their sockets
    /// before the frontend is shut down; requests already submitted by
    /// handlers are answered by the [`crate::Server`]'s own drain).
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept_thread.take() {
            if let Ok(handlers) = h.join() {
                for handler in handlers {
                    let _ = handler.join();
                }
            }
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

fn accept_loop(listener: &TcpListener, client: &Client, stop: &AtomicBool) -> Vec<JoinHandle<()>> {
    let mut handlers = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let client = client.clone();
                let h = std::thread::Builder::new()
                    .name("egemm-serve-conn".into())
                    .spawn(move || handle_connection(stream, &client))
                    .expect("spawn connection handler");
                handlers.push(h);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    handlers
}

/// Serve one connection until EOF or an I/O error. Protocol errors
/// (undecodable frames) are answered in-band and the connection stays
/// up; only transport failures end the session. Both codecs are
/// accepted, negotiated per frame by leading byte (see
/// [`crate::binwire`]); the reply always uses the request's codec.
fn handle_connection(stream: TcpStream, client: &Client) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    crate::stats::reg::connections_delta(1);
    let mut reader = BufReader::new(stream);
    let mut writer = write_half;
    // The loop ends on EOF (`Ok(None)`) or a transport failure.
    while let Ok(Some(payload)) = wire::read_frame(&mut reader) {
        let binary = binwire::is_binary(&payload);
        let decoded = if binary {
            binwire::decode_request(&payload)
        } else {
            wire::decode_request(&payload)
        };
        let reply: Vec<u8> = match decoded {
            Ok(wire::WireRequest::Stats { id }) => {
                let stats = client.stats();
                if binary {
                    binwire::encode_text_response(id, &stats.to_json())
                } else {
                    wire::encode_stats_response(id, &stats).into_bytes()
                }
            }
            Ok(wire::WireRequest::Metrics { id }) => {
                let text = client.metrics_text();
                if binary {
                    binwire::encode_text_response(id, &text)
                } else {
                    wire::encode_metrics_response(id, &text).into_bytes()
                }
            }
            Ok(wire::WireRequest::Job { id, req }) => {
                // Blocking call: one in-flight request per connection,
                // responses naturally in request order. Concurrency is
                // per-connection by design (thread per connection).
                let result = client.call(req);
                if binary {
                    binwire::encode_response(id, &result)
                } else {
                    wire::encode_response(id, &result).into_bytes()
                }
            }
            Err(msg) => {
                let e = crate::ServeError::Invalid(msg);
                if binary {
                    binwire::encode_error(0, &e)
                } else {
                    wire::encode_error(0, &e).into_bytes()
                }
            }
        };
        if wire::write_frame(&mut writer, &reply).is_err() {
            break;
        }
    }
    crate::stats::reg::connections_delta(-1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::GemmRequest;
    use crate::server::{Server, ServerConfig};
    use egemm::{Egemm, TilingConfig};
    use egemm_matrix::Matrix;
    use egemm_tcsim::DeviceSpec;

    #[test]
    fn tcp_roundtrip_and_stats() {
        let server = Server::start(
            Egemm::new(DeviceSpec::t4(), TilingConfig::T4_PAPER),
            ServerConfig::default(),
        );
        let tcp = TcpServer::bind("127.0.0.1:0", server.client()).expect("bind");
        let addr = tcp.local_addr();

        let mut conn = TcpStream::connect(addr).expect("connect");
        let a = Matrix::<f32>::random_uniform(8, 8, 11);
        let b = Matrix::<f32>::random_uniform(8, 8, 12);
        let req = GemmRequest::gemm(a.clone(), b.clone());
        wire::write_frame(&mut conn, wire::encode_request(1, &req).as_bytes()).unwrap();
        let frame = wire::read_frame(&mut conn).unwrap().expect("response");
        let resp = wire::decode_response(&frame).unwrap();
        assert_eq!(resp.id, 1);
        let out = resp.result.expect("served");
        let direct = Egemm::new(DeviceSpec::t4(), TilingConfig::T4_PAPER).gemm(&a, &b);
        assert_eq!(
            out.d.as_slice(),
            direct.d.as_slice(),
            "bit identity over TCP"
        );

        // Garbage frame: answered in-band, connection survives.
        wire::write_frame(&mut conn, b"this is not json").unwrap();
        let frame = wire::read_frame(&mut conn)
            .unwrap()
            .expect("error response");
        let resp = wire::decode_response(&frame).unwrap();
        assert!(matches!(resp.result, Err(crate::ServeError::Invalid(_))));

        // Metrics scrape on the same connection: the exposition carries
        // the serve counters the GEMM above just bumped.
        wire::write_frame(&mut conn, wire::encode_metrics_request(3).as_bytes()).unwrap();
        let frame = wire::read_frame(&mut conn)
            .unwrap()
            .expect("metrics response");
        let v = wire::parse(std::str::from_utf8(&frame).unwrap()).unwrap();
        assert_eq!(v.get("ok").and_then(wire::Value::as_bool), Some(true));
        let text = v
            .get("metrics")
            .and_then(wire::Value::as_str)
            .expect("metrics text");
        assert!(
            text.contains("egemm_serve_requests_total"),
            "exposition should list serve counters:\n{text}"
        );
        assert!(text.contains("egemm_serve_completed_total"));

        // Stats query still works on the same connection.
        wire::write_frame(&mut conn, wire::encode_stats_request(2).as_bytes()).unwrap();
        let frame = wire::read_frame(&mut conn)
            .unwrap()
            .expect("stats response");
        let v = wire::parse(std::str::from_utf8(&frame).unwrap()).unwrap();
        assert_eq!(v.get("ok").and_then(wire::Value::as_bool), Some(true));
        let completed = v
            .get("stats")
            .and_then(|s| s.get("completed"))
            .and_then(wire::Value::as_usize);
        assert_eq!(completed, Some(1));

        drop(conn);
        tcp.shutdown();
        server.shutdown();
    }
}
