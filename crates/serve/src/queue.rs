//! Bounded admission queue and per-request response tickets.
//!
//! The queue is the server's only buffer: a `VecDeque` under one mutex,
//! capped at [`crate::ServerConfig::queue_cap`]. Admission never blocks —
//! a full queue answers [`ServeError::Busy`] immediately — so overload
//! turns into fast rejections, not unbounded memory growth or latency
//! collapse. The scheduler is the only consumer; it drains whole
//! snapshots at a time (see `server.rs`) so co-queued requests can
//! coalesce.
//!
//! Every admitted request carries a [`Ticket`]: a one-shot slot the
//! scheduler fulfills exactly once. Tickets survive scheduler panics —
//! the panic barrier in the scheduler answers every outstanding ticket
//! before the thread exits — so [`Ticket::wait`] never hangs forever.

use crate::request::{GemmRequest, ServeError, ServeOutput};
use egemm::EmulationScheme;
use egemm_matrix::GemmShape;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// Lock a mutex, recovering the guard if a previous holder panicked —
/// the same policy as the engine's pool and cache (every guarded update
/// here is transactional, so the data stays consistent).
pub(crate) fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Grouping key of the bucketing scheduler: requests agreeing on all
/// fields are dispatched together (same shape and scheme are what
/// `gemm_batched` requires; the B fingerprint makes the shared-operand
/// split/pack hit the cache once per bucket). `with_c` and `SplitK`
/// requests get singleton buckets — their entry points take one problem
/// at a time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct BucketKey {
    pub shape: GemmShape,
    pub scheme: EmulationScheme,
    /// Content fingerprint of the B operand ([`egemm::content_fingerprint`]).
    pub b_fp: (u64, u64),
    /// Kind discriminant: 0 = batchable gemm, 1 = gemm-with-C,
    /// 2 = split-K (slice count folded in so identical jobs still share
    /// a bucket slot in dispatch order).
    pub kind: u64,
}

/// One admitted request waiting for dispatch.
pub(crate) struct Pending {
    pub req: GemmRequest,
    pub key: BucketKey,
    pub admitted: Instant,
    /// Absolute deadline (admission + requested duration).
    pub deadline: Option<Instant>,
    pub ticket: Arc<TicketInner>,
    /// Process-unique id assigned at admission (returned to the client
    /// and threaded into engine trace spans).
    pub request_id: u64,
    /// Admission timestamp on the engine trace clock
    /// ([`egemm::telemetry::now_ns`]) so request spans and engine spans
    /// share one timeline in the Chrome-trace export.
    pub admitted_ns: u64,
    /// `Some` when this pending is the *primary* for its content key in
    /// the in-flight dedupe table: its resolution must clear the table
    /// entry, fan the outcome out to every attached follower, and (on
    /// success) feed the memoized result cache. `None` for requests that
    /// bypassed the table (dedupe off, or a same-key primary with a
    /// deadline already existed).
    pub result_key: Option<crate::dedupe::ResultKey>,
}

/// Shared slot a response is delivered into, exactly once.
pub(crate) struct TicketInner {
    slot: Mutex<TicketSlot>,
    ready: Condvar,
}

#[derive(Default)]
struct TicketSlot {
    result: Option<Result<ServeOutput, ServeError>>,
    /// Invoked (once, then dropped) when the result lands — the
    /// event-loop frontend's completion hook. Runs on the fulfilling
    /// thread *outside* the slot lock.
    waker: Option<Box<dyn FnOnce() + Send>>,
}

impl TicketInner {
    pub(crate) fn new() -> Arc<TicketInner> {
        Arc::new(TicketInner {
            slot: Mutex::new(TicketSlot::default()),
            ready: Condvar::new(),
        })
    }

    /// Deliver the response. A second delivery is a logic error upstream
    /// and is dropped (first answer wins) rather than panicking a
    /// scheduler that is busy draining.
    pub(crate) fn fulfill(&self, result: Result<ServeOutput, ServeError>) {
        let waker = {
            let mut slot = lock_unpoisoned(&self.slot);
            if slot.result.is_some() {
                return;
            }
            slot.result = Some(result);
            self.ready.notify_all();
            slot.waker.take()
        };
        if let Some(w) = waker {
            w();
        }
    }
}

/// Handle to one in-flight request. Obtained from [`crate::Client::submit`].
pub struct Ticket {
    pub(crate) inner: Arc<TicketInner>,
}

impl Ticket {
    /// Block until the server answers. The server answers every admitted
    /// request exactly once — on dispatch, on deadline expiry, on engine
    /// failure, or during shutdown drain — so this always returns.
    pub fn wait(self) -> Result<ServeOutput, ServeError> {
        let mut slot = lock_unpoisoned(&self.inner.slot);
        loop {
            if let Some(result) = slot.result.take() {
                return result;
            }
            slot = self
                .inner
                .ready
                .wait(slot)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Non-blocking poll: `Some` once the response has been delivered.
    pub fn try_wait(&self) -> Option<Result<ServeOutput, ServeError>> {
        lock_unpoisoned(&self.inner.slot).result.take()
    }

    /// Register a completion hook. If the result already landed, `f`
    /// runs immediately on the calling thread; otherwise it runs on the
    /// fulfilling thread (scheduler or a memo-hit submitter) the moment
    /// the response is delivered. The hook must be cheap and non-blocking
    /// — the event-loop frontend uses it to push a completion token and
    /// poke its eventfd, then collects the result with [`Ticket::try_wait`].
    pub fn on_ready(&self, f: impl FnOnce() + Send + 'static) {
        let fire_now = {
            let mut slot = lock_unpoisoned(&self.inner.slot);
            if slot.result.is_some() {
                true
            } else {
                slot.waker = Some(Box::new(f));
                return;
            }
        };
        debug_assert!(fire_now);
        f();
    }
}

/// Queue state shared between clients (producers) and the scheduler
/// (sole consumer).
pub(crate) struct QueueState {
    pub queue: VecDeque<Pending>,
    /// False once shutdown begins: new submissions answer `Shutdown`.
    pub accepting: bool,
    /// True once shutdown begins: the scheduler drains and exits.
    pub shutdown: bool,
}

pub(crate) struct AdmissionQueue {
    pub state: Mutex<QueueState>,
    /// Signals the scheduler: work arrived or shutdown began.
    pub work: Condvar,
    pub cap: usize,
}

impl AdmissionQueue {
    pub(crate) fn new(cap: usize) -> AdmissionQueue {
        AdmissionQueue {
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                accepting: true,
                shutdown: false,
            }),
            work: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Admit or reject immediately; never blocks the submitter.
    pub(crate) fn push(&self, pending: Pending) -> Result<(), ServeError> {
        let mut st = lock_unpoisoned(&self.state);
        if !st.accepting {
            return Err(ServeError::Shutdown);
        }
        if st.queue.len() >= self.cap {
            return Err(ServeError::Busy {
                queued: st.queue.len(),
            });
        }
        st.queue.push_back(pending);
        crate::stats::reg::set_queue_depth(st.queue.len());
        self.work.notify_one();
        Ok(())
    }

    /// Begin shutdown: stop admitting, wake the scheduler for its final
    /// drain.
    pub(crate) fn close(&self) {
        let mut st = lock_unpoisoned(&self.state);
        st.accepting = false;
        st.shutdown = true;
        self.work.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egemm_matrix::Matrix;

    fn pending() -> Pending {
        let req = GemmRequest::gemm(Matrix::zeros(2, 2), Matrix::zeros(2, 2));
        Pending {
            key: BucketKey {
                shape: req.shape(),
                scheme: req.scheme,
                b_fp: (0, 0),
                kind: 0,
            },
            admitted: Instant::now(),
            deadline: None,
            ticket: TicketInner::new(),
            request_id: 0,
            admitted_ns: 0,
            result_key: None,
            req,
        }
    }

    #[test]
    fn queue_rejects_when_full_and_after_close() {
        let q = AdmissionQueue::new(2);
        assert!(q.push(pending()).is_ok());
        assert!(q.push(pending()).is_ok());
        assert_eq!(q.push(pending()), Err(ServeError::Busy { queued: 2 }));
        q.close();
        assert_eq!(q.push(pending()), Err(ServeError::Shutdown));
    }

    #[test]
    fn ticket_single_delivery_first_wins() {
        let inner = TicketInner::new();
        inner.fulfill(Err(ServeError::Shutdown));
        inner.fulfill(Err(ServeError::Busy { queued: 9 }));
        let t = Ticket {
            inner: inner.clone(),
        };
        assert_eq!(t.wait().unwrap_err(), ServeError::Shutdown);
    }

    #[test]
    fn try_wait_polls_without_blocking() {
        let inner = TicketInner::new();
        let t = Ticket {
            inner: inner.clone(),
        };
        assert!(t.try_wait().is_none());
        inner.fulfill(Err(ServeError::Shutdown));
        assert!(t.try_wait().is_some());
    }
}
