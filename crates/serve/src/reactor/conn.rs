//! Per-connection state for the epoll reactor: nonblocking read/write
//! buffers, frame extraction, pipelining bookkeeping, and the
//! backpressure / drain state bits.
//!
//! A connection moves through a small set of states, all encoded as
//! flags here and driven by `reactor/mod.rs`:
//!
//! ```text
//! Reading ──queue full──▶ Stalled ──queue space──▶ Reading
//!    │  ▲                    │
//!    │  └──wbuf drained──────┤ (write high-watermark also pauses reads)
//!    │                       │
//!    └──peer EOF / shutdown──▶ Draining ──all replies flushed──▶
//!                              HalfClosed (shutdown(Write)) ──▶ closed
//! ```
//!
//! *Stalled* holds exactly one decoded-but-unadmitted request: when the
//! admission queue answers `Busy`, the reactor parks the request here
//! and stops reading the socket, so overload propagates to the client
//! as TCP flow control instead of an error. *Draining* flushes every
//! pending pipelined reply before the write side is half-closed, so a
//! graceful shutdown never drops an answered request on the floor.

use crate::queue::Ticket;
use crate::wire::MAX_FRAME;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;

/// Pause reading a connection once this many reply bytes are queued
/// unwritten: a peer that stops reading its responses must not grow our
/// write buffer without bound.
pub(crate) const WRITE_HIGH_WATERMARK: usize = 1 << 20;

/// Read chunk size.
const READ_CHUNK: usize = 64 * 1024;

/// A submitted request whose reply has not been written yet. Replies
/// carry the client's frame id, so pipelined responses may complete and
/// be written out of order.
pub(crate) struct PendingReply {
    pub wire_id: u64,
    /// Answer in the codec the request arrived in.
    pub binary: bool,
    pub ticket: Ticket,
}

/// A request frame the admission queue refused with `Busy`; kept as the
/// raw payload (decode is cheap next to the engine call) and re-offered
/// when completions free queue space. While one of these exists the
/// connection's read side is paused (backpressure).
pub(crate) struct Stalled {
    pub payload: Vec<u8>,
}

pub(crate) struct Conn {
    pub stream: TcpStream,
    /// Raw bytes read but not yet framed.
    rbuf: Vec<u8>,
    /// Encoded reply bytes (length prefixes included) not yet written.
    wbuf: Vec<u8>,
    /// Consumed prefix of `wbuf` (compacted lazily).
    wpos: usize,
    /// Event mask currently registered with epoll (reactor-maintained).
    pub interest: u32,
    /// Next per-connection sequence number for completion tokens.
    pub next_seq: u32,
    /// In-flight pipelined requests by sequence number.
    pub inflight: HashMap<u32, PendingReply>,
    pub stalled: Option<Stalled>,
    /// Read side saw EOF; flush what remains, then close.
    pub peer_closed: bool,
    /// Server-side drain (shutdown): stop reading, flush, half-close.
    pub draining: bool,
    /// `shutdown(Write)` already sent.
    pub half_closed: bool,
}

impl Conn {
    pub(crate) fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            interest: 0,
            next_seq: 0,
            inflight: HashMap::new(),
            stalled: None,
            peer_closed: false,
            draining: false,
            half_closed: false,
        }
    }

    /// Drain the socket into `rbuf` until `WouldBlock`. Returns `false`
    /// if the peer closed its write side (EOF).
    pub(crate) fn fill_rbuf(&mut self) -> std::io::Result<bool> {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => return Ok(false),
                Ok(n) => self.rbuf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(true),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Pop one complete length-prefixed frame payload off `rbuf`, if a
    /// whole one has arrived. An oversized length is a protocol error
    /// that kills the connection (the stream can no longer be framed).
    pub(crate) fn next_frame(&mut self) -> Result<Option<Vec<u8>>, String> {
        if self.rbuf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes(self.rbuf[..4].try_into().unwrap()) as usize;
        if len > MAX_FRAME {
            return Err(format!(
                "frame of {len} bytes exceeds the {MAX_FRAME} limit"
            ));
        }
        if self.rbuf.len() < 4 + len {
            return Ok(None);
        }
        let payload = self.rbuf[4..4 + len].to_vec();
        self.rbuf.drain(..4 + len);
        Ok(Some(payload))
    }

    /// Queue one reply payload (framing added here).
    pub(crate) fn queue_reply(&mut self, payload: &[u8]) {
        self.wbuf
            .extend_from_slice(&(payload.len() as u32).to_be_bytes());
        self.wbuf.extend_from_slice(payload);
    }

    /// Write queued bytes until empty or `WouldBlock`.
    pub(crate) fn flush(&mut self) -> std::io::Result<()> {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "peer stopped accepting bytes",
                    ))
                }
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        // Compact once everything (or at least half the buffer) went out.
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
        } else if self.wpos > self.wbuf.len() / 2 {
            self.wbuf.drain(..self.wpos);
            self.wpos = 0;
        }
        Ok(())
    }

    /// Unwritten reply bytes.
    pub(crate) fn unflushed(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    /// Whether the read side should be open right now: not draining or
    /// closed, no stalled request (admission backpressure), and the
    /// write buffer under its high-watermark.
    pub(crate) fn should_read(&self) -> bool {
        !self.draining
            && !self.peer_closed
            && self.stalled.is_none()
            && self.unflushed() < WRITE_HIGH_WATERMARK
    }

    /// The epoll mask this connection currently wants.
    pub(crate) fn wanted_mask(&self) -> u32 {
        let mut mask = 0;
        if self.should_read() {
            mask |= super::sys::EPOLLIN;
        }
        if self.unflushed() > 0 {
            mask |= super::sys::EPOLLOUT;
        }
        mask
    }

    /// Fully quiesced: nothing in flight, nothing stalled, nothing
    /// buffered in either direction.
    pub(crate) fn drained(&self) -> bool {
        self.inflight.is_empty() && self.stalled.is_none() && self.unflushed() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conn_pair() -> (Conn, TcpStream) {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let peer = TcpStream::connect(l.local_addr().unwrap()).unwrap();
        let (server_side, _) = l.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        (Conn::new(server_side), peer)
    }

    #[test]
    fn frames_reassemble_across_partial_reads() {
        let (mut conn, mut peer) = conn_pair();
        let payload = b"hello frame";
        let mut framed = (payload.len() as u32).to_be_bytes().to_vec();
        framed.extend_from_slice(payload);

        // First half, then the rest: no frame until all bytes land.
        peer.write_all(&framed[..6]).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(conn.fill_rbuf().unwrap());
        assert!(conn.next_frame().unwrap().is_none());
        peer.write_all(&framed[6..]).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(conn.fill_rbuf().unwrap());
        assert_eq!(conn.next_frame().unwrap().unwrap(), payload);
        assert!(conn.next_frame().unwrap().is_none());
    }

    #[test]
    fn oversized_frame_is_a_protocol_error() {
        let (mut conn, mut peer) = conn_pair();
        peer.write_all(&u32::MAX.to_be_bytes()).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(conn.fill_rbuf().unwrap());
        assert!(conn.next_frame().is_err());
    }

    #[test]
    fn write_watermark_pauses_reading() {
        let (mut conn, _peer) = conn_pair();
        assert!(conn.should_read());
        conn.queue_reply(&vec![0u8; WRITE_HIGH_WATERMARK]);
        assert!(!conn.should_read(), "over-watermark wbuf pauses reads");
        assert_ne!(conn.wanted_mask() & super::super::sys::EPOLLOUT, 0);
    }
}
