//! Event-loop serving frontend: one thread, one `epoll` instance, many
//! nonblocking connections with pipelined requests.
//!
//! Where the blocking frontend ([`crate::TcpServer`]) spends a thread
//! (and its stack, and its context switches) per connection, the
//! reactor multiplexes every connection over a single thread driven by
//! `epoll` ([`sys`] — raw syscalls, keeping the zero-dependency
//! policy). Clients may pipeline: many requests can be in flight per
//! connection, replies carry the client's frame id, and responses are
//! written in *completion* order, not arrival order.
//!
//! Responses arrive from the scheduler thread via the ticket waker hook
//! ([`crate::queue::Ticket::on_ready`]): the waker pushes a completion
//! token onto a shared list and pokes an `eventfd`, which wakes
//! `epoll_wait`; the reactor then collects the result with `try_wait`,
//! encodes it in the codec the request arrived in (JSON or
//! [`crate::binwire`], negotiated per frame by leading byte), and
//! queues it on the connection's write buffer.
//!
//! **Backpressure** is the load-shedding inversion of the blocking
//! frontend: when the admission queue answers `Busy`, the reactor does
//! *not* bounce the error back. It parks the decoded request
//! ([`conn::Stalled`]), stops polling that socket for readability, and
//! retries as completions free queue space — so overload propagates to
//! clients as TCP flow control (their sends eventually block), while
//! every other connection keeps being served. A write buffer past its
//! high-watermark pauses reading the same way (a peer that won't read
//! replies can't keep feeding us work).
//!
//! **Graceful drain** (shutdown): stop accepting, stop reading, answer
//! any stalled request with `shutdown`, wait for every in-flight ticket,
//! flush every write buffer, then half-close each connection
//! (`shutdown(Write)` — FIN after the last reply) before dropping it.
//! No admitted request loses its ticket and no flushed reply is cut off
//! by an RST. The frontend must be shut down *before* its `Server`,
//! which then answers anything still queued.

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
pub(crate) mod conn;
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
pub(crate) mod sys;

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
pub use imp::EventServer;

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod imp {
    use super::conn::{Conn, PendingReply, Stalled};
    use super::sys;
    use crate::binwire;
    use crate::queue::lock_unpoisoned;
    use crate::request::ServeError;
    use crate::server::Client;
    use crate::stats::reg;
    use crate::wire;
    use std::collections::HashMap;
    use std::io::Write;
    use std::net::{Shutdown, SocketAddr, TcpListener, ToSocketAddrs};
    use std::os::fd::{AsRawFd, FromRawFd, OwnedFd};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Mutex};
    use std::time::{Duration, Instant};

    /// epoll cookie of the listener.
    const TOKEN_LISTENER: u64 = u64::MAX;
    /// epoll cookie of the wakeup eventfd.
    const TOKEN_WAKE: u64 = u64::MAX - 1;
    /// Idle tick: upper bound on stop-flag / stalled-retry latency when
    /// no I/O and no completions arrive.
    const TICK: Duration = Duration::from_millis(20);
    /// Drain safety valve: a peer that never reads its replies cannot
    /// wedge shutdown forever.
    const DRAIN_DEADLINE: Duration = Duration::from_secs(10);

    /// State shared with ticket wakers (scheduler thread) and the
    /// shutdown caller.
    struct Shared {
        stop: AtomicBool,
        /// Completion tokens: `conn_id << 32 | seq`.
        completions: Mutex<Vec<u64>>,
        /// The eventfd, wrapped so any thread can `write` it through a
        /// shared reference.
        waker: std::fs::File,
    }

    impl Shared {
        fn wake(&self) {
            let _ = (&self.waker).write_all(&1u64.to_ne_bytes());
        }

        fn push_completion(&self, token: u64) {
            lock_unpoisoned(&self.completions).push(token);
            self.wake();
        }
    }

    /// A running event-loop frontend bound to one listener.
    pub struct EventServer {
        addr: SocketAddr,
        shared: Arc<Shared>,
        thread: Option<std::thread::JoinHandle<()>>,
    }

    impl EventServer {
        /// Bind and start the reactor thread. Pass `"127.0.0.1:0"` to
        /// let the OS pick a free port.
        pub fn bind<A: ToSocketAddrs>(addr: A, client: Client) -> std::io::Result<EventServer> {
            let listener = TcpListener::bind(addr)?;
            listener.set_nonblocking(true)?;
            let addr = listener.local_addr()?;

            let epfd = sys::epoll_create()?;
            // SAFETY: fresh fd from epoll_create1; OwnedFd takes over
            // closing it (on any error path below too).
            let epoll = unsafe { OwnedFd::from_raw_fd(epfd) };
            let wake_fd = sys::eventfd()?;
            // SAFETY: fresh eventfd; File closes it on drop.
            let waker = unsafe { std::fs::File::from_raw_fd(wake_fd) };

            sys::epoll_ctl(
                epoll.as_raw_fd(),
                sys::EPOLL_CTL_ADD,
                listener.as_raw_fd(),
                sys::EPOLLIN,
                TOKEN_LISTENER,
            )?;
            sys::epoll_ctl(
                epoll.as_raw_fd(),
                sys::EPOLL_CTL_ADD,
                wake_fd,
                sys::EPOLLIN,
                TOKEN_WAKE,
            )?;

            let shared = Arc::new(Shared {
                stop: AtomicBool::new(false),
                completions: Mutex::new(Vec::new()),
                waker,
            });
            let reactor_shared = Arc::clone(&shared);
            let thread = std::thread::Builder::new()
                .name("egemm-serve-epoll".into())
                .spawn(move || {
                    Reactor {
                        epoll,
                        listener,
                        client,
                        shared: reactor_shared,
                        conns: HashMap::new(),
                        next_conn_id: 0,
                        accepting: true,
                    }
                    .run()
                })
                .expect("spawn epoll reactor");
            Ok(EventServer {
                addr,
                shared,
                thread: Some(thread),
            })
        }

        /// The bound address.
        pub fn local_addr(&self) -> SocketAddr {
            self.addr
        }

        /// Graceful drain; see the module docs. Blocks until every
        /// pending reply is flushed and every connection half-closed.
        pub fn shutdown(mut self) {
            self.shutdown_impl();
        }

        fn shutdown_impl(&mut self) {
            self.shared.stop.store(true, Ordering::SeqCst);
            self.shared.wake();
            if let Some(h) = self.thread.take() {
                let _ = h.join();
            }
        }
    }

    impl Drop for EventServer {
        fn drop(&mut self) {
            self.shutdown_impl();
        }
    }

    struct Reactor {
        epoll: OwnedFd,
        listener: TcpListener,
        client: Client,
        shared: Arc<Shared>,
        conns: HashMap<u64, Conn>,
        next_conn_id: u64,
        accepting: bool,
    }

    impl Reactor {
        fn run(mut self) {
            let mut events = [sys::EpollEvent { events: 0, data: 0 }; 256];
            let mut drain_started: Option<Instant> = None;
            // An Err from epoll itself means nothing is left to drive.
            while let Ok(n) =
                sys::epoll_wait(self.epoll.as_raw_fd(), &mut events, TICK.as_millis() as i32)
            {
                if self.shared.stop.load(Ordering::SeqCst) && drain_started.is_none() {
                    drain_started = Some(Instant::now());
                    self.begin_drain();
                }
                let mut dead: Vec<u64> = Vec::new();
                for ev in &events[..n] {
                    // Copy out of the packed struct before use.
                    let (data, mask) = (ev.data, ev.events);
                    match data {
                        TOKEN_WAKE => self.drain_wakeups(),
                        TOKEN_LISTENER => self.accept_burst(),
                        id => {
                            if !self.handle_conn_event(id, mask) {
                                dead.push(id);
                            }
                        }
                    }
                }
                self.deliver_completions(&mut dead);
                self.retry_stalled(&mut dead);
                self.sweep(&mut dead, drain_started.is_some());
                if let Some(started) = drain_started {
                    if self.conns.is_empty() || started.elapsed() > DRAIN_DEADLINE {
                        break;
                    }
                }
            }
            // Drain epilogue: every surviving connection is quiesced (or
            // the deadline passed) — half-close, then drop.
            for (_, conn) in self.conns.drain() {
                let _ = conn.stream.shutdown(Shutdown::Write);
                reg::connections_delta(-1);
            }
        }

        /// Shutdown entered: stop accepting, stop reading, answer every
        /// stalled (never-admitted) request with `shutdown`.
        fn begin_drain(&mut self) {
            if self.accepting {
                let _ = sys::epoll_ctl(
                    self.epoll.as_raw_fd(),
                    sys::EPOLL_CTL_DEL,
                    self.listener.as_raw_fd(),
                    0,
                    0,
                );
                self.accepting = false;
            }
            for conn in self.conns.values_mut() {
                conn.draining = true;
                // A stalled frame was never admitted; it gets the same
                // answer a post-shutdown submit would.
                if let Some(st) = conn.stalled.take() {
                    let binary = binwire::is_binary(&st.payload);
                    let decoded = if binary {
                        binwire::decode_request(&st.payload)
                    } else {
                        wire::decode_request(&st.payload)
                    };
                    let wire_id = match decoded {
                        Ok(wire::WireRequest::Job { id, .. }) => id,
                        _ => 0,
                    };
                    conn.queue_reply(&encode_err(binary, wire_id, &ServeError::Shutdown));
                }
            }
        }

        fn drain_wakeups(&self) {
            use std::io::Read;
            let mut count = [0u8; 8];
            let _ = (&self.shared.waker).read_exact(&mut count);
        }

        fn accept_burst(&mut self) {
            if !self.accepting {
                return;
            }
            loop {
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        let _ = stream.set_nodelay(true);
                        // Conn ids stay below 2^32 so completion tokens
                        // can pack `id << 32 | seq` without colliding
                        // with the reserved cookies.
                        let id = self.next_conn_id;
                        self.next_conn_id = (self.next_conn_id + 1) & (u32::MAX as u64);
                        let mut conn = Conn::new(stream);
                        conn.interest = sys::EPOLLIN;
                        if sys::epoll_ctl(
                            self.epoll.as_raw_fd(),
                            sys::EPOLL_CTL_ADD,
                            conn.stream.as_raw_fd(),
                            conn.interest,
                            id,
                        )
                        .is_err()
                        {
                            continue;
                        }
                        self.conns.insert(id, conn);
                        reg::connections_delta(1);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => return,
                }
            }
        }

        /// Returns `false` when the connection must be closed.
        fn handle_conn_event(&mut self, id: u64, mask: u32) -> bool {
            let Some(conn) = self.conns.get_mut(&id) else {
                return true; // already gone; stale event
            };
            if mask & (sys::EPOLLERR | sys::EPOLLHUP) != 0 {
                return false;
            }
            if mask & sys::EPOLLOUT != 0 && conn.flush().is_err() {
                return false;
            }
            if mask & sys::EPOLLIN != 0 {
                match conn.fill_rbuf() {
                    Ok(true) => {}
                    Ok(false) => conn.peer_closed = true,
                    Err(_) => return false,
                }
                if !self.process_frames(id) {
                    return false;
                }
            }
            true
        }

        /// Decode and act on every complete frame buffered on `id`,
        /// stopping early if admission backpressure stalls the
        /// connection. Returns `false` on a protocol error that makes
        /// the stream unframeable.
        fn process_frames(&mut self, id: u64) -> bool {
            loop {
                let Some(conn) = self.conns.get_mut(&id) else {
                    return true;
                };
                if conn.stalled.is_some() || conn.draining {
                    return true;
                }
                let payload = match conn.next_frame() {
                    Err(_) => return false,
                    Ok(None) => return true,
                    Ok(Some(p)) => p,
                };
                self.handle_frame(id, &payload, false);
            }
        }

        fn handle_frame(&mut self, conn_id: u64, payload: &[u8], retrying: bool) {
            let binary = binwire::is_binary(payload);
            let decoded = if binary {
                binwire::decode_request(payload)
            } else {
                wire::decode_request(payload)
            };
            let reply: Vec<u8> = match decoded {
                Err(msg) => encode_err(binary, 0, &ServeError::Invalid(msg)),
                Ok(wire::WireRequest::Stats { id }) => {
                    let stats = self.client.stats();
                    if binary {
                        binwire::encode_text_response(id, &stats.to_json())
                    } else {
                        wire::encode_stats_response(id, &stats).into_bytes()
                    }
                }
                Ok(wire::WireRequest::Metrics { id }) => {
                    let text = self.client.metrics_text();
                    if binary {
                        binwire::encode_text_response(id, &text)
                    } else {
                        wire::encode_metrics_response(id, &text).into_bytes()
                    }
                }
                Ok(wire::WireRequest::Job { id, req }) => {
                    match self.client.submit(req) {
                        Ok(ticket) => {
                            let conn = self.conns.get_mut(&conn_id).expect("conn exists");
                            let seq = conn.next_seq;
                            conn.next_seq = conn.next_seq.wrapping_add(1);
                            let token = (conn_id << 32) | seq as u64;
                            let shared = Arc::clone(&self.shared);
                            // May fire right here (memo hit): the token
                            // lands on the completion list and is
                            // delivered later this same loop pass.
                            ticket.on_ready(move || shared.push_completion(token));
                            conn.inflight.insert(
                                seq,
                                PendingReply {
                                    wire_id: id,
                                    binary,
                                    ticket,
                                },
                            );
                            return;
                        }
                        Err(ServeError::Busy { .. }) => {
                            // Backpressure: park the frame, pause
                            // reading (mask synced in `sweep`), retry as
                            // completions free queue space.
                            let conn = self.conns.get_mut(&conn_id).expect("conn exists");
                            debug_assert!(conn.stalled.is_none());
                            conn.stalled = Some(Stalled {
                                payload: payload.to_vec(),
                            });
                            if !retrying {
                                reg::bump(reg::backpressure_pauses);
                            }
                            return;
                        }
                        Err(e) => encode_err(binary, id, &e),
                    }
                }
            };
            if let Some(conn) = self.conns.get_mut(&conn_id) {
                conn.queue_reply(&reply);
            }
        }

        /// Write out any completions the wakers queued.
        fn deliver_completions(&mut self, dead: &mut Vec<u64>) {
            let tokens: Vec<u64> = std::mem::take(&mut *lock_unpoisoned(&self.shared.completions));
            for token in tokens {
                let (conn_id, seq) = (token >> 32, token as u32);
                let Some(conn) = self.conns.get_mut(&conn_id) else {
                    continue; // connection closed while in flight
                };
                let Some(pr) = conn.inflight.remove(&seq) else {
                    continue;
                };
                let Some(result) = pr.ticket.try_wait() else {
                    // Waker fires strictly after the result is stored;
                    // defensive: put it back rather than lose a reply.
                    conn.inflight.insert(seq, pr);
                    continue;
                };
                let reply = if pr.binary {
                    binwire::encode_response(pr.wire_id, &result)
                } else {
                    wire::encode_response(pr.wire_id, &result).into_bytes()
                };
                conn.queue_reply(&reply);
                if conn.flush().is_err() {
                    dead.push(conn_id);
                }
            }
        }

        /// Re-offer stalled frames; completions may have freed queue
        /// space. A frame that no longer stalls unblocks its
        /// connection's read side and any frames buffered behind it.
        fn retry_stalled(&mut self, _dead: &mut [u64]) {
            let stalled_ids: Vec<u64> = self
                .conns
                .iter()
                .filter(|(_, c)| c.stalled.is_some())
                .map(|(id, _)| *id)
                .collect();
            for id in stalled_ids {
                let Some(conn) = self.conns.get_mut(&id) else {
                    continue;
                };
                let Some(st) = conn.stalled.take() else {
                    continue;
                };
                self.handle_frame(id, &st.payload, true);
                let unstalled = self.conns.get(&id).is_some_and(|c| c.stalled.is_none());
                if unstalled {
                    let _ = self.process_frames(id);
                }
            }
        }

        /// Flush, sync interest masks, and close finished connections.
        fn sweep(&mut self, dead: &mut Vec<u64>, draining: bool) {
            for (&id, conn) in self.conns.iter_mut() {
                if conn.unflushed() > 0 && conn.flush().is_err() {
                    dead.push(id);
                    continue;
                }
                let finished = (conn.peer_closed || draining) && conn.drained();
                if finished {
                    if draining && !conn.half_closed {
                        // Every reply is flushed: FIN before close.
                        let _ = conn.stream.shutdown(Shutdown::Write);
                        conn.half_closed = true;
                    }
                    dead.push(id);
                    continue;
                }
                let wanted = conn.wanted_mask();
                if wanted != conn.interest {
                    if sys::epoll_ctl(
                        self.epoll.as_raw_fd(),
                        sys::EPOLL_CTL_MOD,
                        conn.stream.as_raw_fd(),
                        wanted,
                        id,
                    )
                    .is_err()
                    {
                        dead.push(id);
                        continue;
                    }
                    conn.interest = wanted;
                }
            }
            dead.sort_unstable();
            dead.dedup();
            for id in dead.drain(..) {
                if let Some(conn) = self.conns.remove(&id) {
                    let _ = sys::epoll_ctl(
                        self.epoll.as_raw_fd(),
                        sys::EPOLL_CTL_DEL,
                        conn.stream.as_raw_fd(),
                        0,
                        0,
                    );
                    reg::connections_delta(-1);
                }
            }
        }
    }

    /// Encode an error reply in the request's codec.
    fn encode_err(binary: bool, id: u64, e: &ServeError) -> Vec<u8> {
        if binary {
            binwire::encode_error(id, e)
        } else {
            wire::encode_error(id, e).into_bytes()
        }
    }
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
mod imp_stub {
    use crate::server::Client;
    use std::net::{SocketAddr, ToSocketAddrs};

    /// Stub on platforms without the raw-syscall epoll backend; `bind`
    /// reports `Unsupported` (use [`crate::TcpServer`] instead).
    pub struct EventServer {
        never: std::convert::Infallible,
    }

    impl EventServer {
        pub fn bind<A: ToSocketAddrs>(_addr: A, _client: Client) -> std::io::Result<EventServer> {
            Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "the epoll event frontend requires x86-64 Linux",
            ))
        }

        pub fn local_addr(&self) -> SocketAddr {
            match self.never {}
        }

        pub fn shutdown(self) {}
    }
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
pub use imp_stub::EventServer;
