//! Raw `epoll` / `eventfd` syscalls for the event-loop frontend.
//!
//! The workspace has a zero-external-dependency policy, so there is no
//! `libc` crate to lean on; the four syscalls the reactor needs are
//! issued directly with `asm!` on x86-64 Linux (the platform this repo
//! targets and tests on; see the `cfg` gate in `reactor/mod.rs` — other
//! platforms get a stub frontend that reports `Unsupported`).
//!
//! Everything here mirrors the kernel ABI, not glibc: numbers from
//! `arch/x86/entry/syscalls/syscall_64.tbl`, the packed 12-byte
//! `epoll_event` layout x86-64 uses, and the negative-errno return
//! convention (glibc's `-1`/`errno` split happens in userspace).

#![allow(clippy::missing_safety_doc)]

use std::io;

// x86-64 syscall numbers.
const SYS_EPOLL_WAIT: i64 = 232;
const SYS_EPOLL_CTL: i64 = 233;
const SYS_EVENTFD2: i64 = 290;
const SYS_EPOLL_CREATE1: i64 = 291;

// epoll_create1 / eventfd2 flags.
const EPOLL_CLOEXEC: i64 = 0o2000000;
const EFD_CLOEXEC: i64 = 0o2000000;
const EFD_NONBLOCK: i64 = 0o4000;

// epoll_ctl ops.
pub const EPOLL_CTL_ADD: i32 = 1;
pub const EPOLL_CTL_DEL: i32 = 2;
pub const EPOLL_CTL_MOD: i32 = 3;

// Event masks.
pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;

/// The x86-64 kernel ABI's `struct epoll_event`: packed, 12 bytes
/// (other architectures pad `data` to an 8-byte boundary; x86-64
/// deliberately does not, for 32-bit compat).
#[repr(C, packed)]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    pub events: u32,
    /// Caller-owned cookie returned verbatim with each event; the
    /// reactor stores its connection id here.
    pub data: u64,
}

/// Issue a raw 4-argument syscall. The kernel returns a negative errno
/// on failure; callers go through [`check`].
unsafe fn syscall4(n: i64, a1: i64, a2: i64, a3: i64, a4: i64) -> i64 {
    let ret: i64;
    std::arch::asm!(
        "syscall",
        inlateout("rax") n => ret,
        in("rdi") a1,
        in("rsi") a2,
        in("rdx") a3,
        in("r10") a4,
        // The kernel clobbers rcx (return address) and r11 (rflags).
        lateout("rcx") _,
        lateout("r11") _,
        options(nostack),
    );
    ret
}

/// Convert a kernel return value into `io::Result`.
fn check(ret: i64) -> io::Result<i64> {
    if ret < 0 {
        Err(io::Error::from_raw_os_error((-ret) as i32))
    } else {
        Ok(ret)
    }
}

/// `epoll_create1(EPOLL_CLOEXEC)` — a new epoll instance fd.
pub fn epoll_create() -> io::Result<i32> {
    check(unsafe { syscall4(SYS_EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0) }).map(|fd| fd as i32)
}

/// `epoll_ctl(epfd, op, fd, event)` — add/modify/remove one fd's
/// registration. `events` is ignored for `EPOLL_CTL_DEL`.
pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, events: u32, data: u64) -> io::Result<()> {
    let ev = EpollEvent { events, data };
    check(unsafe {
        syscall4(
            SYS_EPOLL_CTL,
            epfd as i64,
            op as i64,
            fd as i64,
            std::ptr::addr_of!(ev) as i64,
        )
    })
    .map(|_| ())
}

/// `epoll_wait(epfd, buf, buf.len(), timeout_ms)` — block for up to
/// `timeout_ms` (−1 = forever), returning how many events landed in
/// `buf`. `EINTR` is retried here so callers never see it.
pub fn epoll_wait(epfd: i32, buf: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
    loop {
        let ret = unsafe {
            syscall4(
                SYS_EPOLL_WAIT,
                epfd as i64,
                buf.as_mut_ptr() as i64,
                buf.len() as i64,
                timeout_ms as i64,
            )
        };
        match check(ret) {
            Ok(n) => return Ok(n as usize),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

/// `eventfd2(0, EFD_NONBLOCK | EFD_CLOEXEC)` — the reactor's wakeup
/// channel: any thread writes an 8-byte count to unblock `epoll_wait`.
pub fn eventfd() -> io::Result<i32> {
    check(unsafe { syscall4(SYS_EVENTFD2, 0, EFD_NONBLOCK | EFD_CLOEXEC, 0, 0) })
        .map(|fd| fd as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::fd::FromRawFd;

    #[test]
    fn epoll_event_layout_matches_kernel_abi() {
        assert_eq!(std::mem::size_of::<EpollEvent>(), 12, "x86-64 packed");
    }

    #[test]
    fn eventfd_wakes_epoll() {
        let ep = epoll_create().expect("epoll_create1");
        let efd = eventfd().expect("eventfd2");
        epoll_ctl(ep, EPOLL_CTL_ADD, efd, EPOLLIN, 7).expect("ctl add");

        let mut buf = [EpollEvent { events: 0, data: 0 }; 4];
        // Nothing written yet: a zero-timeout wait reports no events.
        assert_eq!(epoll_wait(ep, &mut buf, 0).unwrap(), 0);

        // SAFETY: we own both fds; File takes over closing them.
        let mut ef = unsafe { std::fs::File::from_raw_fd(efd) };
        ef.write_all(&1u64.to_ne_bytes()).unwrap();
        assert_eq!(epoll_wait(ep, &mut buf, 1000).unwrap(), 1);
        let (data, events) = (buf[0].data, buf[0].events);
        assert_eq!(data, 7, "cookie returned verbatim");
        assert_ne!(events & EPOLLIN, 0);

        // Draining the counter rearms the level-triggered fd.
        let mut count = [0u8; 8];
        ef.read_exact(&mut count).unwrap();
        assert_eq!(u64::from_ne_bytes(count), 1);
        assert_eq!(epoll_wait(ep, &mut buf, 0).unwrap(), 0);

        epoll_ctl(ep, EPOLL_CTL_DEL, efd, 0, 0).unwrap();
        drop(unsafe { std::fs::File::from_raw_fd(ep) });
    }
}
