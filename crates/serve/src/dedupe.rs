//! Content-addressed serving: in-flight request dedupe and the
//! memoized result cache.
//!
//! The engine already fingerprints operand *content* for its packed-
//! operand cache. This module exploits the same fingerprints one layer
//! up, where they are worth even more: two requests agreeing on every
//! bit of input ([`ResultKey`]) must produce bit-identical outputs —
//! the engine's own bit-identity guarantee — so the serving tier can
//!
//! 1. **dedupe in flight**: while a request with key `K` is queued or
//!    dispatched, an identical concurrent request attaches to it as a
//!    *follower* instead of entering the admission queue — one engine
//!    dispatch fans out to N tickets ([`InFlightTable`]);
//! 2. **memoize results**: a bounded, byte-budgeted LRU keyed by `K`
//!    returns the cached product without touching the queue at all
//!    ([`ResultCache`]) — the time-space tradeoff of the packed-operand
//!    cache applied to whole outputs.
//!
//! Neither layer can change a bit: a key covers the full content of A,
//! B, and C plus shape, scheme, and job kind, and any mutation of an
//! operand buffer changes its fingerprint, so a stale entry can never
//! be hit. Both layers only decide whether bit-identical work is
//! *reused* or *redone*.
//!
//! Fate-sharing rule: a primary that carries a deadline never accepts
//! followers (its pre-dispatch expiry would propagate a timeout to
//! requests that asked for none), so every fanned-out outcome is either
//! a served result (each follower's own deadline is still checked at
//! delivery), an engine failure, or shutdown — all of which the
//! follower would have observed had it dispatched alone.

use crate::queue::{lock_unpoisoned, TicketInner};
use crate::request::GemmRequest;
use egemm::{content_fingerprint, EmulationScheme};
use egemm_matrix::{GemmShape, Matrix};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Full content address of a request: everything that can influence an
/// output bit. Two requests with equal keys are interchangeable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct ResultKey {
    pub shape: GemmShape,
    pub scheme: EmulationScheme,
    /// Job-kind discriminant, same packing as `BucketKey::kind`
    /// (split-K slice count folded in).
    pub kind: u64,
    pub a_fp: (u64, u64),
    pub b_fp: (u64, u64),
    /// Fingerprint of C when present; `None` keys never collide with
    /// `Some` keys even at equal shape.
    pub c_fp: Option<(u64, u64)>,
}

impl ResultKey {
    /// Fingerprint a validated request. Hashing is ~4 bytes/cycle —
    /// negligible against the O(N²) split the engine would otherwise
    /// run — and A/B/C are fingerprinted at admission time, so any
    /// caller-side mutation of a buffer between calls yields a new key
    /// (the no-stale-hit guarantee).
    pub(crate) fn of(req: &GemmRequest, kind: u64) -> ResultKey {
        ResultKey {
            shape: req.shape(),
            scheme: req.scheme,
            kind,
            a_fp: content_fingerprint(req.a.as_slice()),
            b_fp: content_fingerprint(req.b.as_slice()),
            c_fp: req.c.as_ref().map(|c| content_fingerprint(c.as_slice())),
        }
    }
}

/// One deduped request riding on a primary's dispatch.
pub(crate) struct Follower {
    pub ticket: Arc<TicketInner>,
    pub admitted: Instant,
    pub deadline: Option<Instant>,
    pub request_id: u64,
}

/// State of one in-flight key.
struct InFlightEntry {
    /// Whether the primary carries a deadline; if so, followers are
    /// refused (see the module-level fate-sharing rule) and identical
    /// requests enqueue independently.
    primary_has_deadline: bool,
    followers: Vec<Follower>,
}

/// Keys with a request currently queued or dispatched. The primary
/// registers on admission and *must* clear its entry on every
/// resolution path (success, engine failure, shutdown drain) — the
/// server routes all of them through `Server::resolve`.
#[derive(Default)]
pub(crate) struct InFlightTable {
    map: Mutex<HashMap<ResultKey, InFlightEntry>>,
}

/// Outcome of offering a request to the in-flight table.
pub(crate) enum Attach {
    /// No identical request in flight: caller becomes the primary and
    /// must enqueue (and later resolve the key).
    Primary,
    /// Attached as a follower; the ticket will be fulfilled when the
    /// primary resolves. Nothing to enqueue.
    Followed,
    /// An identical primary is in flight but refuses followers (it has
    /// a deadline); caller must enqueue independently without
    /// registering the key.
    Refused,
}

impl InFlightTable {
    /// Register `key` or attach to its existing primary.
    pub(crate) fn offer(
        &self,
        key: ResultKey,
        has_deadline: bool,
        follower: impl FnOnce() -> Follower,
    ) -> Attach {
        let mut map = lock_unpoisoned(&self.map);
        match map.get_mut(&key) {
            None => {
                map.insert(
                    key,
                    InFlightEntry {
                        primary_has_deadline: has_deadline,
                        followers: Vec::new(),
                    },
                );
                Attach::Primary
            }
            Some(entry) if entry.primary_has_deadline => Attach::Refused,
            Some(entry) => {
                entry.followers.push(follower());
                Attach::Followed
            }
        }
    }

    /// Clear `key` and take every attached follower for fan-out. Called
    /// exactly once per primary, on its resolution path.
    pub(crate) fn resolve(&self, key: &ResultKey) -> Vec<Follower> {
        lock_unpoisoned(&self.map)
            .remove(key)
            .map(|e| e.followers)
            .unwrap_or_default()
    }

    /// Drop a registration that never enqueued (admission failed after
    /// the key was registered). No followers can have attached yet in
    /// that window only if the queue push failed immediately — any that
    /// did are returned so the caller can answer them.
    pub(crate) fn abort(&self, key: &ResultKey) -> Vec<Follower> {
        self.resolve(key)
    }
}

/// A memoized product. `d` is shared (`Arc`) between the cache and any
/// number of hits; delivery clones the matrix into the response, so a
/// later eviction never invalidates a delivered result.
struct CachedResult {
    d: Arc<Matrix<f32>>,
    bytes: u64,
    last_used: u64,
}

/// Byte-budgeted LRU over whole GEMM results, keyed by content.
/// Capacity 0 disables the cache entirely (every lookup misses without
/// recording a miss, so stats stay quiet when the feature is off).
pub(crate) struct ResultCache {
    map: Mutex<HashMap<ResultKey, CachedResult>>,
    cap_bytes: usize,
    clock: AtomicU64,
    bytes: AtomicU64,
    pub hits: AtomicU64,
    pub misses: AtomicU64,
    pub evictions: AtomicU64,
}

impl ResultCache {
    pub(crate) fn new(cap_bytes: usize) -> ResultCache {
        ResultCache {
            map: Mutex::new(HashMap::new()),
            cap_bytes,
            clock: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    pub(crate) fn enabled(&self) -> bool {
        self.cap_bytes > 0
    }

    /// Current resident bytes.
    pub(crate) fn resident_bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Look up a key, refreshing its recency on a hit.
    pub(crate) fn get(&self, key: &ResultKey) -> Option<Arc<Matrix<f32>>> {
        if !self.enabled() {
            return None;
        }
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let mut map = lock_unpoisoned(&self.map);
        match map.get_mut(key) {
            Some(entry) => {
                entry.last_used = stamp;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.d))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert a computed result, evicting least-recently-used entries
    /// until the byte budget holds. A result larger than the whole
    /// budget is not cached (it would evict everything for one entry
    /// that can never be held).
    pub(crate) fn insert(&self, key: ResultKey, d: &Matrix<f32>) {
        if !self.enabled() {
            return;
        }
        let bytes = std::mem::size_of_val(d.as_slice()) as u64;
        if bytes > self.cap_bytes as u64 {
            return;
        }
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let mut map = lock_unpoisoned(&self.map);
        if let Some(old) = map.insert(
            key,
            CachedResult {
                d: Arc::new(d.clone()),
                bytes,
                last_used: stamp,
            },
        ) {
            self.bytes.fetch_sub(old.bytes, Ordering::Relaxed);
        }
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        while self.bytes.load(Ordering::Relaxed) > self.cap_bytes as u64 && map.len() > 1 {
            let victim = map
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            let Some(victim) = victim else { break };
            if let Some(e) = map.remove(&victim) {
                self.bytes.fetch_sub(e.bytes, Ordering::Relaxed);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(tag: u64) -> ResultKey {
        ResultKey {
            shape: GemmShape::new(4, 4, 4),
            scheme: EmulationScheme::EgemmTc,
            kind: 0,
            a_fp: (tag, tag),
            b_fp: (tag, !tag),
            c_fp: None,
        }
    }

    #[test]
    fn result_cache_lru_respects_byte_budget() {
        // 4x4 f32 = 64 bytes per entry; budget holds two.
        let cache = ResultCache::new(128);
        let m = Matrix::<f32>::random_uniform(4, 4, 1);
        cache.insert(key(1), &m);
        cache.insert(key(2), &m);
        assert_eq!(cache.resident_bytes(), 128);
        assert!(cache.get(&key(1)).is_some(), "both entries fit");
        // Key 2 is now the LRU victim.
        cache.insert(key(3), &m);
        assert!(cache.get(&key(2)).is_none(), "LRU entry evicted");
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(3)).is_some());
        assert_eq!(cache.evictions.load(Ordering::Relaxed), 1);
        assert_eq!(cache.resident_bytes(), 128);
    }

    #[test]
    fn result_cache_capacity_zero_is_off() {
        let cache = ResultCache::new(0);
        let m = Matrix::<f32>::random_uniform(4, 4, 1);
        cache.insert(key(1), &m);
        assert!(cache.get(&key(1)).is_none());
        assert_eq!(cache.misses.load(Ordering::Relaxed), 0, "off = quiet");
        assert_eq!(cache.resident_bytes(), 0);
    }

    #[test]
    fn oversized_result_is_not_cached() {
        let cache = ResultCache::new(32);
        let m = Matrix::<f32>::random_uniform(4, 4, 1); // 64 bytes
        cache.insert(key(1), &m);
        assert_eq!(cache.resident_bytes(), 0);
    }

    #[test]
    fn inflight_attach_and_resolve() {
        let table = InFlightTable::default();
        let mk = || Follower {
            ticket: TicketInner::new(),
            admitted: Instant::now(),
            deadline: None,
            request_id: 0,
        };
        assert!(matches!(table.offer(key(1), false, mk), Attach::Primary));
        assert!(matches!(table.offer(key(1), false, mk), Attach::Followed));
        assert!(matches!(table.offer(key(2), true, mk), Attach::Primary));
        // A deadline-carrying primary refuses followers.
        assert!(matches!(table.offer(key(2), false, mk), Attach::Refused));
        assert_eq!(table.resolve(&key(1)).len(), 1);
        assert_eq!(table.resolve(&key(1)).len(), 0, "entry cleared");
        assert_eq!(table.resolve(&key(2)).len(), 0);
    }
}
