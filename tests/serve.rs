//! Integration tests of the serving layer's contracts:
//!
//! - **Bit identity** (the acceptance bar): any result served through
//!   admission, bucketing, and batched dispatch — at any pool size,
//!   with any coalescing — is bitwise equal to a direct cold
//!   `Egemm::gemm` on the same operands.
//! - **Backpressure**: a full admission queue rejects with `Busy`
//!   immediately; every request that *was* admitted is still answered.
//! - **Deadlines**: expiry before dispatch costs no engine time; expiry
//!   after dispatch is reported as such.
//! - **Robustness**: invalid payloads and engine panics are per-request
//!   errors — the scheduler and the shared pool keep serving.
//! - **Shutdown**: drains every admitted request before exiting.

use egemm::{Egemm, EngineRuntime, RuntimeConfig, TilingConfig};
use egemm_matrix::Matrix;
use egemm_serve::{GemmRequest, JobKind, ServeError, Server, ServerConfig};
use egemm_tcsim::DeviceSpec;
use proptest::prelude::*;
use std::time::Duration;

/// An engine on a private runtime with a pinned pool size (tests must
/// not share cache state through the process-global runtime).
fn engine(threads: usize) -> Egemm {
    let rt = EngineRuntime::new(RuntimeConfig {
        threads,
        ..RuntimeConfig::default()
    });
    Egemm::new(DeviceSpec::t4(), TilingConfig::T4_PAPER).with_runtime(rt)
}

/// The cold reference: solo pool, cache disabled — every call splits
/// and packs from scratch, exactly what the bit-identity bar compares
/// against.
fn cold() -> Egemm {
    Egemm::new(DeviceSpec::t4(), TilingConfig::T4_PAPER).with_runtime(EngineRuntime::new(
        RuntimeConfig {
            threads: 1,
            cache_bytes: 0,
            ..RuntimeConfig::default()
        },
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Serving-layer bit identity: a wave of concurrent requests over
    /// one shared B — submitted from separate threads, coalesced by the
    /// batch window into shared-B buckets, dispatched on solo and
    /// multi-worker pools — must return products bitwise equal to
    /// direct cold `Egemm::gemm` calls on the same operands.
    #[test]
    fn served_results_bitwise_equal_cold_direct_gemm(
        m in 1usize..48,
        n in 1usize..48,
        k in 1usize..48,
        pool in 0usize..2,
        wave in 1usize..5,
        seed in 0u64..1000,
    ) {
        let threads = [1usize, 4][pool];
        let server = Server::start(engine(threads), ServerConfig {
            batch_window: Duration::from_millis(5),
            ..ServerConfig::default()
        });
        let client = server.client();
        let b_shared = Matrix::<f32>::random_uniform(k, n, seed);

        let handles: Vec<_> = (0..wave)
            .map(|i| {
                let c = client.clone();
                let a = Matrix::<f32>::random_uniform(m, k, seed + 100 + i as u64);
                let b = b_shared.clone();
                std::thread::spawn(move || {
                    let out = c.call(GemmRequest::gemm(a.clone(), b)).expect("served");
                    (a, out)
                })
            })
            .collect();

        let reference = cold();
        for h in handles {
            let (a, out) = h.join().expect("submitter thread");
            let direct = reference.gemm(&a, &b_shared);
            prop_assert_eq!(out.shape, direct.shape);
            for (i, (x, y)) in out.d.as_slice().iter().zip(direct.d.as_slice()).enumerate() {
                prop_assert_eq!(
                    x.to_bits(), y.to_bits(),
                    "element {} differs served vs cold direct ({}x{}x{}, {} thread(s), wave {})",
                    i, m, n, k, threads, wave
                );
            }
        }
        let stats = server.stats();
        prop_assert_eq!(stats.completed, wave as u64);
        prop_assert_eq!(stats.engine_failures, 0);
        server.shutdown();
    }
}

/// Requests sharing B content submitted inside one batch window ride a
/// single bucket: fewer engine calls than requests, and the batched
/// ratio shows it.
#[test]
fn shared_b_requests_coalesce() {
    let server = Server::start(
        engine(2),
        ServerConfig {
            batch_window: Duration::from_millis(40),
            ..ServerConfig::default()
        },
    );
    let client = server.client();
    let b0 = Matrix::<f32>::random_uniform(24, 16, 9);
    let tickets: Vec<_> = (0..6)
        .map(|i| {
            let a = Matrix::<f32>::random_uniform(32, 24, 50 + i);
            client
                .submit(GemmRequest::gemm(a, b0.clone()))
                .expect("admitted")
        })
        .collect();
    let outs: Vec<_> = tickets
        .into_iter()
        .map(|t| t.wait().expect("served"))
        .collect();
    // All six landed within one 40 ms window (submissions are
    // microseconds apart), so at worst the first dispatched solo and
    // the rest shared one call.
    assert!(
        outs.iter().any(|o| o.batched_with >= 2),
        "no coalescing observed: {:?}",
        outs.iter().map(|o| o.batched_with).collect::<Vec<_>>()
    );
    let stats = server.stats();
    assert!(
        stats.batched_ratio() > 1.0,
        "batched ratio must exceed 1.0, got {} ({} calls for {} dispatched)",
        stats.batched_ratio(),
        stats.engine_calls,
        stats.dispatched
    );
    assert_eq!(stats.completed, 6);
    server.shutdown();
}

/// A full queue answers `Busy` immediately and loses nothing that was
/// admitted.
#[test]
fn full_queue_rejects_busy_and_admitted_work_completes() {
    let server = Server::start(
        engine(2),
        ServerConfig {
            queue_cap: 2,
            batch_window: Duration::from_millis(50),
            ..ServerConfig::default()
        },
    );
    let client = server.client();
    let b = Matrix::<f32>::random_uniform(16, 16, 2);

    let mut tickets = Vec::new();
    let mut busy = None;
    for i in 0..10u64 {
        let a = Matrix::<f32>::random_uniform(16, 16, 100 + i);
        match client.submit(GemmRequest::gemm(a, b.clone())) {
            Ok(t) => tickets.push(t),
            Err(e @ ServeError::Busy { .. }) => {
                busy = Some(e);
                break;
            }
            Err(e) => panic!("unexpected admission error: {e}"),
        }
    }
    // Queue cap 2 and a 50 ms linger before the first drain: a tight
    // submission loop must hit the cap.
    let busy = busy.expect("queue never filled");
    assert_eq!(busy, ServeError::Busy { queued: 2 });
    assert!(tickets.len() >= 2);

    for t in tickets {
        t.wait().expect("admitted request must be served");
    }
    let stats = server.stats();
    assert!(stats.rejected_busy >= 1);
    assert_eq!(stats.completed, stats.admitted);
    server.shutdown();
}

/// A deadline that expires while the request is still queued is
/// answered without costing engine time.
#[test]
fn deadline_expires_before_dispatch() {
    let server = Server::start(
        engine(1),
        ServerConfig {
            batch_window: Duration::from_millis(50),
            ..ServerConfig::default()
        },
    );
    let client = server.client();
    let a = Matrix::<f32>::random_uniform(8, 8, 1);
    let b = Matrix::<f32>::random_uniform(8, 8, 2);
    let err = client
        .call(GemmRequest::gemm(a, b).with_deadline(Duration::from_millis(1)))
        .unwrap_err();
    assert_eq!(
        err,
        ServeError::TimedOut {
            after_dispatch: false
        }
    );
    let stats = server.stats();
    assert_eq!(stats.timed_out_before, 1);
    assert_eq!(
        stats.engine_calls, 0,
        "expired request must cost no engine time"
    );
    server.shutdown();
}

/// A deadline that expires while the engine call is running is still
/// reported as a timeout — with the `after_dispatch` flag set.
#[test]
fn deadline_expires_after_dispatch() {
    let server = Server::start(engine(1), ServerConfig::default());
    let client = server.client();
    // Big enough that the emulated call comfortably outlives a 10 ms
    // deadline; the scheduler dequeues in microseconds, so the deadline
    // is still live at dispatch.
    let a = Matrix::<f32>::random_uniform(256, 256, 1);
    let b = Matrix::<f32>::random_uniform(256, 256, 2);
    let err = client
        .call(GemmRequest::gemm(a, b).with_deadline(Duration::from_millis(10)))
        .unwrap_err();
    assert_eq!(
        err,
        ServeError::TimedOut {
            after_dispatch: true
        }
    );
    let stats = server.stats();
    assert_eq!(stats.timed_out_after, 1);
    assert_eq!(stats.engine_calls, 1, "the engine time was spent");
    server.shutdown();
}

/// Invalid payloads and engine panics are per-request errors: the
/// scheduler thread and the shared worker pool keep serving afterwards,
/// and later results are still bit-identical to the cold reference —
/// at both pool sizes.
#[test]
fn bad_requests_never_poison_the_server() {
    for threads in [1usize, 4] {
        let server = Server::start(engine(threads), ServerConfig::default());
        let client = server.client();

        // 1. Dimension mismatch: rejected at validation.
        let err = client
            .call(GemmRequest::gemm(
                Matrix::<f32>::zeros(8, 9),
                Matrix::<f32>::zeros(8, 8),
            ))
            .unwrap_err();
        assert!(
            matches!(err, ServeError::Invalid(ref m) if m.contains("inner dimensions")),
            "{err}"
        );

        // 2. NaN under the finite-only policy: rejected at validation.
        let mut a = Matrix::<f32>::zeros(4, 4);
        a.set(2, 3, f32::NAN);
        let err = client
            .call(GemmRequest::gemm(a, Matrix::<f32>::zeros(4, 4)))
            .unwrap_err();
        assert!(
            matches!(err, ServeError::Invalid(ref m) if m.contains("non-finite")),
            "{err}"
        );

        // 3. A request the engine itself panics on (split-K slice count
        //    beyond k): the dispatch barrier converts the panic into a
        //    per-request Engine error.
        let req = GemmRequest {
            a: Matrix::<f32>::random_uniform(8, 8, 3),
            b: Matrix::<f32>::random_uniform(8, 8, 4),
            c: None,
            kind: JobKind::SplitK { slices: 999 },
            scheme: egemm::EmulationScheme::EgemmTc,
            deadline: None,
        };
        let err = client.call(req).unwrap_err();
        assert!(
            matches!(err, ServeError::Engine(ref m) if m.contains("slice count out of range")),
            "{err}"
        );

        // 4. The same server — same scheduler thread, same pool — still
        //    serves, bit-identically to the cold reference.
        let a = Matrix::<f32>::random_uniform(24, 24, 5);
        let b = Matrix::<f32>::random_uniform(24, 24, 6);
        let out = client
            .call(GemmRequest::gemm(a.clone(), b.clone()))
            .expect("server must survive bad requests");
        let direct = cold().gemm(&a, &b);
        assert_eq!(
            out.d.as_slice(),
            direct.d.as_slice(),
            "post-failure result differs from cold reference ({threads} thread(s))"
        );

        let stats = server.stats();
        assert_eq!(stats.rejected_invalid, 2);
        assert_eq!(stats.engine_failures, 1);
        assert_eq!(stats.completed, 1);
        server.shutdown();
    }
}

/// Graceful shutdown answers every admitted request before the
/// scheduler exits; submissions after shutdown are rejected.
#[test]
fn shutdown_drains_admitted_requests() {
    let server = Server::start(
        engine(2),
        ServerConfig {
            batch_window: Duration::from_millis(40),
            ..ServerConfig::default()
        },
    );
    let client = server.client();
    let b = Matrix::<f32>::random_uniform(16, 16, 1);
    let tickets: Vec<_> = (0..4u64)
        .map(|i| {
            let a = Matrix::<f32>::random_uniform(16, 16, 10 + i);
            client
                .submit(GemmRequest::gemm(a, b.clone()))
                .expect("admitted")
        })
        .collect();

    // Shutdown begins while the scheduler is still lingering; the
    // admitted tickets drain.
    server.shutdown();
    for t in tickets {
        t.wait().expect("admitted request must drain on shutdown");
    }
    let a = Matrix::<f32>::random_uniform(16, 16, 99);
    assert_eq!(
        client.submit(GemmRequest::gemm(a, b)).map(|_| ()),
        Err(ServeError::Shutdown)
    );
}

/// Split-K requests are served through the same queue and answered with
/// results bit-identical to a direct call.
#[test]
fn split_k_served_bit_identical() {
    let server = Server::start(engine(2), ServerConfig::default());
    let client = server.client();
    let a = Matrix::<f32>::random_uniform(16, 96, 21);
    let b = Matrix::<f32>::random_uniform(96, 16, 22);
    let req = GemmRequest {
        a: a.clone(),
        b: b.clone(),
        c: None,
        kind: JobKind::SplitK { slices: 4 },
        scheme: egemm::EmulationScheme::EgemmTc,
        deadline: None,
    };
    let out = client.call(req).expect("served");
    let direct = cold().gemm_split_k(&a, &b, 4);
    assert_eq!(out.d.as_slice(), direct.d.as_slice());
    server.shutdown();
}
