//! Cross-crate integration: kernel builder + timing layer.
//!
//! Checks that the paper's headline *performance shapes* come out of the
//! model: EGEMM-TC's throughput band on T4 and RTX 6000, the benefit of
//! each optimization, and the scaling behaviour over matrix sizes.

use egemm::{build_kernel, EmulationScheme, KernelOpts, TilingConfig};
use egemm_matrix::GemmShape;
use egemm_tcsim::{kernel_time, Bound, DeviceSpec};

fn egemm_timing(spec: &DeviceSpec, shape: GemmShape, opts: KernelOpts) -> f64 {
    let d = build_kernel(
        spec,
        &TilingConfig::T4_PAPER,
        shape,
        EmulationScheme::EgemmTc,
        opts,
    );
    kernel_time(spec, &d).tflops
}

#[test]
fn t4_throughput_band_at_8192() {
    // Artifact §A.3: ~12 TFLOPS for the SASS emulation kernel on T4.
    let t = egemm_timing(
        &DeviceSpec::t4(),
        GemmShape::square(8192),
        KernelOpts::default(),
    );
    assert!((10.0..=14.0).contains(&t), "T4 8192^3: {t} TFLOPS");
}

#[test]
fn rtx6000_is_faster_than_t4() {
    // Figure 8b: same shape, higher absolute numbers on RTX 6000
    // (~25 vs ~12 TFLOPS at the top end).
    for n in [2048usize, 8192] {
        let t4 = egemm_timing(
            &DeviceSpec::t4(),
            GemmShape::square(n),
            KernelOpts::default(),
        );
        let rtx = egemm_timing(
            &DeviceSpec::rtx6000(),
            GemmShape::square(n),
            KernelOpts::default(),
        );
        assert!(rtx > t4 * 1.3, "n={n}: rtx {rtx} vs t4 {t4}");
    }
}

#[test]
fn throughput_increases_with_size() {
    // Figure 8a: larger matrices utilize the device better.
    let spec = DeviceSpec::t4();
    let mut last = 0.0;
    for n in GemmShape::PERF_SWEEP {
        let t = egemm_timing(&spec, GemmShape::square(n), KernelOpts::default());
        assert!(
            t >= last * 0.98,
            "throughput should be ~monotone in size: {t} after {last} at n={n}"
        );
        last = t;
    }
}

#[test]
fn all_optimizations_contribute() {
    let spec = DeviceSpec::t4();
    let shape = GemmShape::square(8192);
    let full = egemm_timing(&spec, shape, KernelOpts::default());
    let no_lh = egemm_timing(
        &spec,
        shape,
        KernelOpts {
            latency_hiding: false,
            ..KernelOpts::default()
        },
    );
    // Without FRAG caching, C lives in shared memory and the paper-size
    // block tile no longer fits an SM: the un-optimized kernel must also
    // shrink its tiling (as generic library kernels do).
    let small = TilingConfig {
        bm: 64,
        bn: 64,
        bk: 32,
        wm: 32,
        wn: 32,
        wk: 8,
    };
    let d = build_kernel(
        &spec,
        &small,
        shape,
        EmulationScheme::EgemmTc,
        KernelOpts {
            frag_caching: false,
            ..KernelOpts::default()
        },
    );
    let no_fc = kernel_time(&spec, &d).tflops;
    assert!(full > no_lh, "latency hiding must help: {full} vs {no_lh}");
    assert!(full > no_fc, "FRAG caching must help: {full} vs {no_fc}");
}

#[test]
fn skewed_shapes_stay_performant() {
    // Figure 9: EGEMM-TC "consistently provides high performance" on
    // (N, N, 2N) and (4N, N, N).
    let spec = DeviceSpec::t4();
    for n in [1024usize, 2048, 4096] {
        let sq = egemm_timing(&spec, GemmShape::square(n), KernelOpts::default());
        let sk = egemm_timing(&spec, GemmShape::skewed_k(n), KernelOpts::default());
        let sm = egemm_timing(&spec, GemmShape::skewed_m(n), KernelOpts::default());
        assert!(sk > sq * 0.8, "K-skew at n={n}: {sk} vs square {sq}");
        assert!(sm > sq * 0.8, "M-skew at n={n}: {sm} vs square {sq}");
    }
}

#[test]
fn small_sizes_are_not_compute_bound() {
    // §7.3: "the GPU capability is not fully utilized at small matrix
    // sizes" — 1024^3 on 40 SMs with (128,128) tiles is a single 64-block
    // wave, heavily under-occupied.
    let spec = DeviceSpec::t4();
    let d = build_kernel(
        &spec,
        &TilingConfig::T4_PAPER,
        GemmShape::square(1024),
        EmulationScheme::EgemmTc,
        KernelOpts::default(),
    );
    let t = kernel_time(&spec, &d);
    let t_big = egemm_timing(&spec, GemmShape::square(16384), KernelOpts::default());
    assert!(
        t.tflops < t_big,
        "1024^3 {} should trail 16384^3 {}",
        t.tflops,
        t_big
    );
}

#[test]
fn four_launch_variant_pays_launch_overhead_at_small_sizes() {
    let spec = DeviceSpec::t4();
    let shape = GemmShape::square(1024);
    let one = egemm_timing(&spec, shape, KernelOpts::default());
    let four = egemm_timing(
        &spec,
        shape,
        KernelOpts {
            launches: 4,
            ..KernelOpts::default()
        },
    );
    assert!(
        one > four,
        "4 launches must cost at small sizes: {one} vs {four}"
    );
}

#[test]
fn dram_roofline_engages_for_thin_k() {
    // A degenerate k=64 problem moves lots of C relative to compute.
    let spec = DeviceSpec::t4();
    let d = build_kernel(
        &spec,
        &TilingConfig::T4_PAPER,
        GemmShape::new(16384, 16384, 64),
        EmulationScheme::EgemmTc,
        KernelOpts::default(),
    );
    let t = kernel_time(&spec, &d);
    assert_eq!(t.bound, Bound::Memory, "thin-k should be DRAM bound: {t:?}");
}
