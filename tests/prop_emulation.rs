//! Property-based tests of the numeric core (proptest).
//!
//! Invariants of the split/emulation machinery over the whole input space,
//! not just the paper's U[-1,1] workloads.

use egemm::{emulated_gemm, emulated_gemm_entrywise, EmulationScheme, SplitMatrix};
use egemm_fp::{round_split, truncate_split, Half, SplitScheme};
use egemm_matrix::Matrix;
use proptest::prelude::*;

/// Finite, normal-range f32 values (away from overflow/underflow of the
/// binary16 split).
fn workload_f32() -> impl Strategy<Value = f32> {
    prop_oneof![
        -1.0f32..=1.0,
        -1000.0f32..=1000.0,
        -1e-3f32..=1e-3,
        Just(0.0f32),
        Just(1.0f32),
        Just(-0.5f32),
    ]
}

proptest! {
    /// Round-split reconstructs within the extended-precision bound (with
    /// the subnormal-lo absolute floor).
    #[test]
    fn round_split_error_bound(x in workload_f32()) {
        let s = round_split(x);
        let err = (s.reconstruct() - x as f64).abs();
        let tol = (x.abs() as f64 * 2f64.powi(-21)).max(2f64.powi(-25)) * 1.0001;
        prop_assert!(err <= tol, "err {} tol {}", err, tol);
    }

    /// The hi part of a round-split is the nearest binary16.
    #[test]
    fn round_split_hi_is_nearest(x in workload_f32()) {
        let s = round_split(x);
        prop_assert_eq!(s.hi.to_bits(), Half::from_f32(x).to_bits());
    }

    /// Truncate-split parts never exceed the input magnitude and share its
    /// sign (or are zero).
    #[test]
    fn truncate_split_sign_structure(x in workload_f32()) {
        let s = truncate_split(x);
        if x > 0.0 {
            prop_assert!(!s.hi.is_sign_negative());
            prop_assert!(s.lo.is_zero() || !s.lo.is_sign_negative());
        }
        prop_assert!(s.hi.to_f64().abs() <= x.abs() as f64 * 1.0001 + 1e-30);
    }

    /// Round-split is at least as accurate as truncate-split, pointwise.
    #[test]
    fn round_beats_truncate_pointwise(x in workload_f32()) {
        let r = (round_split(x).reconstruct() - x as f64).abs();
        let t = (truncate_split(x).reconstruct() - x as f64).abs();
        prop_assert!(r <= t + 1e-30, "round {} > truncate {}", r, t);
    }

    /// Half conversions round-trip through f32 for arbitrary bit patterns
    /// (NaNs stay NaN).
    #[test]
    fn half_f32_roundtrip(bits in any::<u16>()) {
        let h = Half::from_bits(bits);
        let back = Half::from_f32(h.to_f32());
        if h.is_nan() {
            prop_assert!(back.is_nan());
        } else {
            prop_assert_eq!(h.to_bits(), back.to_bits());
        }
    }

    /// Half addition is commutative (IEEE: same rounding either way).
    #[test]
    fn half_add_commutes(a in workload_f32(), b in workload_f32()) {
        let (x, y) = (Half::from_f32(a), Half::from_f32(b));
        prop_assert_eq!((x + y).to_bits(), (y + x).to_bits());
    }

    /// Half multiplication is commutative.
    #[test]
    fn half_mul_commutes(a in workload_f32(), b in workload_f32()) {
        let (x, y) = (Half::from_f32(a), Half::from_f32(b));
        prop_assert_eq!((x * y).to_bits(), (y * x).to_bits());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The flat parallel executor equals the scalar entrywise oracle
    /// bitwise at random shapes, schemes and elements.
    #[test]
    fn executor_matches_oracle(
        m in 1usize..24,
        k in 1usize..48,
        n in 1usize..24,
        seed in 0u64..1000,
        scheme_idx in 0usize..4,
    ) {
        let scheme = [
            EmulationScheme::EgemmTc,
            EmulationScheme::Markidis,
            EmulationScheme::MarkidisFourTerm,
            EmulationScheme::TcHalf,
        ][scheme_idx];
        let a = Matrix::<f32>::random_uniform(m, k, seed);
        let b = Matrix::<f32>::random_uniform(k, n, seed + 1);
        let sa = SplitMatrix::split(&a, scheme.split_scheme());
        let sb = SplitMatrix::split(&b, scheme.split_scheme());
        let d = emulated_gemm(&sa, &sb, None, scheme);
        let (i, j) = (m - 1, n - 1);
        let e = emulated_gemm_entrywise(&sa, &sb, None, scheme, i, j);
        prop_assert_eq!(d.get(i, j).to_bits(), e.to_bits());
        let e0 = emulated_gemm_entrywise(&sa, &sb, None, scheme, 0, 0);
        prop_assert_eq!(d.get(0, 0).to_bits(), e0.to_bits());
    }

    /// GEMM linearity in C: D(A, B, C) == D(A, B, 0) + C within one f32
    /// rounding per accumulation step... exactly: C enters as the
    /// accumulator seed, so the identity holds bitwise only when the
    /// additions commute; we assert the value-level property.
    #[test]
    fn c_seed_shifts_output(
        n in 1usize..16,
        seed in 0u64..500,
    ) {
        let a = Matrix::<f32>::random_uniform(n, n, seed);
        let b = Matrix::<f32>::random_uniform(n, n, seed + 1);
        let sa = SplitMatrix::split(&a, SplitScheme::Round);
        let sb = SplitMatrix::split(&b, SplitScheme::Round);
        let c = Matrix::from_fn(n, n, |_, _| 100.0f32);
        let d0 = emulated_gemm(&sa, &sb, None, EmulationScheme::EgemmTc);
        let dc = emulated_gemm(&sa, &sb, Some(&c), EmulationScheme::EgemmTc);
        for (x, y) in dc.as_slice().iter().zip(d0.as_slice()) {
            // Relative tolerance: accumulating onto 100.0 changes rounding
            // of each partial sum by at most ulp(100) per step.
            let k = n as f32;
            prop_assert!((x - y - 100.0).abs() <= 4.0 * k * 100.0 * f32::EPSILON);
        }
    }
}
