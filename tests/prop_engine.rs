//! Property-based bit-identity tests of the blocked execution engine.
//!
//! The engine (crates/core/src/engine) may block, pack, and parallelize
//! however it likes, but per output element it must replay *exactly* the
//! profiled Tensor-Core accumulation order. These properties compare it
//! against an independent scalar replay (and the crate's entrywise
//! oracle) with `to_bits` equality — zero tolerance — across all four
//! schemes, `tk` in {4, 8, 16}, and adversarial shapes: 1 x k x 1,
//! non-multiples of every tile size, m << n and m >> n.

use egemm::{
    emulated_gemm_entrywise, emulated_gemm_rows, gemm_blocked, gemm_blocked_fused, gemm_blocked_in,
    gemm_blocked_prepared, gemm_blocked_range, gemm_blocked_range_fused_in, prepare_b, Egemm,
    EmulationScheme, EngineConfig, EngineRuntime, KernelOpts, RuntimeConfig, SplitMatrix,
    TilingConfig,
};
use egemm_fp::SplitKernel;
use egemm_matrix::Matrix;
use egemm_tcsim::DeviceSpec;
use proptest::prelude::*;

const SCHEMES: [EmulationScheme; 4] = [
    EmulationScheme::EgemmTc,
    EmulationScheme::Markidis,
    EmulationScheme::MarkidisFourTerm,
    EmulationScheme::TcHalf,
];

/// Scalar replay of the accumulation contract with an explicit `tk` and
/// k range: ascending k in `tk` chunks from `k_lo`, scheme terms in
/// issue order per chunk, one separate binary32 multiply and add per
/// product.
#[allow(clippy::too_many_arguments)]
fn entrywise_tk(
    sa: &SplitMatrix,
    sb: &SplitMatrix,
    c: Option<&Matrix<f32>>,
    scheme: EmulationScheme,
    tk: usize,
    k_lo: usize,
    k_hi: usize,
    i: usize,
    j: usize,
) -> f32 {
    let (k, n) = (sa.cols(), sb.cols());
    let mut acc = c.map_or(0.0, |c0| c0.get(i, j));
    let mut kt = k_lo;
    while kt < k_hi {
        let chunk = tk.min(k_hi - kt);
        for &(a_lo, b_lo) in scheme.terms() {
            let ap = sa.plane(a_lo);
            let bp = sb.plane(b_lo);
            for kk in kt..kt + chunk {
                acc += ap[i * k + kk] * bp[kk * n + j];
            }
        }
        kt += chunk;
    }
    acc
}

fn split_pair(
    m: usize,
    k: usize,
    n: usize,
    scheme: EmulationScheme,
    seed: u64,
) -> (SplitMatrix, SplitMatrix) {
    let a = Matrix::<f32>::random_uniform(m, k, seed);
    let b = Matrix::<f32>::random_uniform(k, n, seed + 1);
    (
        SplitMatrix::split(&a, scheme.split_scheme()),
        SplitMatrix::split(&b, scheme.split_scheme()),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random shapes, schemes, tk, and blocking configs: every output
    /// element bit-equals the scalar replay.
    #[test]
    fn blocked_engine_bit_identical(
        m in 1usize..20,
        k in 1usize..40,
        n in 1usize..20,
        tk_idx in 0usize..3,
        scheme_idx in 0usize..4,
        mc in 1usize..12,
        nc in 1usize..24,
        kc in 1usize..32,
        threads in 1usize..4,
        seed in 0u64..1000,
        with_c in proptest::strategy::any::<bool>(),
    ) {
        let scheme = SCHEMES[scheme_idx];
        let tk = [4usize, 8, 16][tk_idx];
        let (sa, sb) = split_pair(m, k, n, scheme, seed);
        let c = Matrix::<f32>::random_uniform(m, n, seed + 2);
        let c_opt = if with_c { Some(&c) } else { None };
        let cfg = EngineConfig { mc, nc, kc, threads, ..Default::default() };
        let d = gemm_blocked(&sa, &sb, c_opt, scheme, tk, cfg);
        for i in 0..m {
            for j in 0..n {
                let want = entrywise_tk(&sa, &sb, c_opt, scheme, tk, 0, k, i, j);
                prop_assert_eq!(
                    d.get(i, j).to_bits(),
                    want.to_bits(),
                    "{:?} tk={} ({},{})",
                    scheme, tk, i, j
                );
            }
        }
    }

    /// Split-K slices chunk from the slice start and stay bit-identical.
    #[test]
    fn blocked_range_bit_identical(
        k in 2usize..48,
        cut_num in 1usize..8,
        tk_idx in 0usize..3,
        scheme_idx in 0usize..4,
        seed in 0u64..1000,
    ) {
        let scheme = SCHEMES[scheme_idx];
        let tk = [4usize, 8, 16][tk_idx];
        let (m, n) = (5usize, 7usize);
        let (sa, sb) = split_pair(m, k, n, scheme, seed);
        let k_lo = (cut_num * k / 8).min(k - 1);
        let k_hi = k;
        let cfg = EngineConfig { mc: 3, nc: 5, kc: 9, threads: 2, ..Default::default() };
        let d = gemm_blocked_range(&sa, &sb, k_lo, k_hi, scheme, tk, cfg);
        for i in 0..m {
            for j in 0..n {
                let want = entrywise_tk(&sa, &sb, None, scheme, tk, k_lo, k_hi, i, j);
                prop_assert_eq!(d.get(i, j).to_bits(), want.to_bits());
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The fused split-and-pack pipeline is bit-identical to the staged
    /// split-then-pack reference: random (non-tile-multiple) shapes, all
    /// four schemes (covering both split schemes), pool sizes 1 and 4,
    /// full products and split-K slices starting mid-operand.
    #[test]
    fn fused_pipeline_bit_identical_to_staged(
        m in 1usize..24,
        k in 2usize..48,
        n in 1usize..28,
        scheme_idx in 0usize..4,
        threads_idx in 0usize..2,
        cut_num in 0usize..8,
        tk_idx in 0usize..3,
        seed in 0u64..1000,
        with_c in proptest::strategy::any::<bool>(),
    ) {
        let scheme = SCHEMES[scheme_idx];
        let tk = [4usize, 8, 16][tk_idx];
        let threads = [1usize, 4][threads_idx];
        let a = Matrix::<f32>::random_uniform(m, k, seed);
        let b = Matrix::<f32>::random_uniform(k, n, seed + 1);
        let c = Matrix::<f32>::random_uniform(m, n, seed + 2);
        let c_opt = if with_c { Some(&c) } else { None };
        let sa = SplitMatrix::split(&a, scheme.split_scheme());
        let sb = SplitMatrix::split(&b, scheme.split_scheme());
        let cfg = EngineConfig { mc: 5, nc: 9, kc: 12, threads, ..Default::default() };

        // Full product: fused raw-operand entry vs the staged engine.
        let want = gemm_blocked(&sa, &sb, c_opt, scheme, tk, cfg);
        let got = gemm_blocked_fused(&a, &b, c_opt, scheme, tk, cfg);
        for (x, y) in got.as_slice().iter().zip(want.as_slice()) {
            prop_assert_eq!(
                x.to_bits(), y.to_bits(),
                "fused full product diverged ({:?}, tk={}, threads={})",
                scheme, tk, threads
            );
        }

        // Split-K slice: chunking restarts at k_lo on both paths.
        let k_lo = (cut_num * k / 8).min(k - 1);
        let rt = EngineRuntime::new(RuntimeConfig {
            threads,
            cache_bytes: 0,
            ..Default::default()
        });
        let want_r = gemm_blocked_range(&sa, &sb, k_lo, k, scheme, tk, cfg);
        let got_r = gemm_blocked_range_fused_in(&rt, &a, &b, k_lo, k, scheme, tk, cfg);
        for (x, y) in got_r.as_slice().iter().zip(want_r.as_slice()) {
            prop_assert_eq!(
                x.to_bits(), y.to_bits(),
                "fused slice diverged ({:?}, tk={}, k_lo={})",
                scheme, tk, k_lo
            );
        }
    }

    /// The `EngineConfig::staged` knob routes the whole public API
    /// (gemm, prepared handles, split-K) through the staged reference,
    /// and both routes agree bitwise at pool sizes 1 and 4.
    #[test]
    fn staged_knob_agrees_with_fused_default(
        m in 1usize..16,
        k in 2usize..32,
        n in 1usize..16,
        scheme_idx in 0usize..4,
        slices in 1usize..4,
        seed in 0u64..1000,
    ) {
        let scheme = SCHEMES[scheme_idx];
        let a = Matrix::<f32>::random_uniform(m, k, seed);
        let b = Matrix::<f32>::random_uniform(k, n, seed + 1);
        for threads in [1usize, 4] {
            let rc = RuntimeConfig { threads, ..Default::default() };
            let fused = egemm_on(scheme, rc);
            let staged = egemm_on(scheme, rc).with_opts(KernelOpts {
                engine: EngineConfig { staged: true, ..Default::default() },
                ..Default::default()
            });
            let df = fused.gemm(&a, &b).d;
            let ds = staged.gemm(&a, &b).d;
            prop_assert_eq!(df.as_slice(), ds.as_slice(), "gemm (threads={})", threads);

            let pf = fused.prepare(&b);
            let ps = staged.prepare(&b);
            prop_assert!(pf.split().is_none(), "fused prepare must not stage planes");
            prop_assert!(ps.split().is_some(), "staged prepare must retain planes");
            let dpf = fused.gemm_prepared(&a, &pf, None).d;
            let dps = staged.gemm_prepared(&a, &ps, None).d;
            prop_assert_eq!(dpf.as_slice(), df.as_slice(), "fused prepared (threads={})", threads);
            prop_assert_eq!(dps.as_slice(), df.as_slice(), "staged prepared (threads={})", threads);

            let s = slices.min(k);
            let skf = fused.gemm_split_k(&a, &b, s).d;
            let sks = staged.gemm_split_k(&a, &b, s).d;
            prop_assert_eq!(skf.as_slice(), sks.as_slice(), "split-k s={} (threads={})", s, threads);
        }
    }
}

/// An `Egemm` on a fresh private runtime (so cache counters and pool
/// width are isolated from other tests in this process).
fn egemm_on(scheme: EmulationScheme, cfg: RuntimeConfig) -> Egemm {
    Egemm::new(DeviceSpec::t4(), TilingConfig::T4_PAPER)
        .with_scheme(scheme)
        .with_runtime(EngineRuntime::new(cfg))
}

/// The pre-runtime reference path: no caching, scalar split kernel,
/// single thread.
fn cold_reference(scheme: EmulationScheme) -> Egemm {
    egemm_on(
        scheme,
        RuntimeConfig {
            threads: 1,
            cache_bytes: 0,
            split_kernel: SplitKernel::Scalar,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Cache-miss, cache-hit, and prepared-handle paths are all bitwise
    /// identical to the uncached scalar path, at pool sizes 1 and 4.
    #[test]
    fn cached_paths_bit_identical_to_uncached(
        m in 1usize..16,
        k in 1usize..32,
        n in 1usize..16,
        scheme_idx in 0usize..4,
        seed in 0u64..1000,
    ) {
        let scheme = SCHEMES[scheme_idx];
        let a = Matrix::<f32>::random_uniform(m, k, seed);
        let b = Matrix::<f32>::random_uniform(k, n, seed + 1);
        let want = cold_reference(scheme).gemm(&a, &b).d;
        for threads in [1usize, 4] {
            let eg = egemm_on(scheme, RuntimeConfig { threads, ..Default::default() });
            let miss = eg.gemm(&a, &b).d; // cold cache: both operands miss
            let hit = eg.gemm(&a, &b).d; // warm cache: both operands hit
            let pb = eg.prepare(&b);
            let prepared = eg.gemm_prepared(&a, &pb, None).d;
            let prepared_again = eg.gemm_prepared(&a, &pb, None).d;
            for (name, d) in [
                ("miss", &miss),
                ("hit", &hit),
                ("prepared", &prepared),
                ("prepared_again", &prepared_again),
            ] {
                for (x, y) in d.as_slice().iter().zip(want.as_slice()) {
                    prop_assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "{} path diverged ({:?}, threads={})",
                        name,
                        scheme,
                        threads
                    );
                }
            }
            let s = eg.runtime().cache_stats();
            prop_assert!(s.hits >= 2, "warm call must hit both operands: {:?}", s);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Work-stealing pool sizes 2/4/8 under deliberately tiny blocking
    /// (many tiles per worker, so idle workers must steal, and every
    /// jc column's B panel is contended through the cooperative store)
    /// agree bitwise with the 1-worker output across the staged, fused,
    /// prepared-B, and split-K paths.
    #[test]
    fn pool_sizes_bit_identical_under_tiny_blocking(
        m in 1usize..32,
        k in 2usize..40,
        n in 1usize..36,
        scheme_idx in 0usize..4,
        cut_num in 0usize..8,
        seed in 0u64..1000,
    ) {
        let scheme = SCHEMES[scheme_idx];
        let tk = 8usize;
        let a = Matrix::<f32>::random_uniform(m, k, seed);
        let b = Matrix::<f32>::random_uniform(k, n, seed + 1);
        let sa = SplitMatrix::split(&a, scheme.split_scheme());
        let sb = SplitMatrix::split(&b, scheme.split_scheme());
        let cfg_for =
            |threads: usize| EngineConfig { mc: 5, nc: 9, kc: 7, threads, ..Default::default() };
        let k_lo = (cut_num * k / 8).min(k - 1);
        let bits = |d: &Matrix<f32>| d.as_slice().iter().map(|x| x.to_bits()).collect::<Vec<u32>>();

        let want = bits(&gemm_blocked(&sa, &sb, None, scheme, tk, cfg_for(1)));
        let want_range = bits(&gemm_blocked_range(&sa, &sb, k_lo, k, scheme, tk, cfg_for(1)));

        for threads in [2usize, 4, 8] {
            let cfg = cfg_for(threads);
            let staged = bits(&gemm_blocked(&sa, &sb, None, scheme, tk, cfg));
            prop_assert_eq!(&staged, &want, "staged diverged (threads={})", threads);

            let fused = bits(&gemm_blocked_fused(&a, &b, None, scheme, tk, cfg));
            prop_assert_eq!(&fused, &want, "fused diverged (threads={})", threads);

            let rt = EngineRuntime::new(RuntimeConfig {
                threads,
                cache_bytes: 0,
                ..Default::default()
            });
            let pb = prepare_b(&rt, &b, scheme.split_scheme(), tk, cfg);
            let prepared = bits(&gemm_blocked_prepared(&rt, &sa, &pb, None, scheme, tk, cfg));
            prop_assert_eq!(&prepared, &want, "prepared-B diverged (threads={})", threads);

            let ranged = bits(&gemm_blocked_range(&sa, &sb, k_lo, k, scheme, tk, cfg));
            prop_assert_eq!(&ranged, &want_range, "split-K diverged (threads={})", threads);
        }
    }
}

#[test]
fn panel_store_packs_each_panel_exactly_once_per_call() {
    // The cooperative panel store's contract: per engine call, each
    // (jc, pc) B panel is packed by exactly one worker and every other
    // (tile, pc) visit reuses the published copy. mc=5 / nc=16 / kc=8
    // with tk=8 are already legal (no clamping), so a 23x29x31 product
    // has a 5x2 tile grid over 4 k-panels: 2*4 = 8 packs and
    // 5*2*4 - 8 = 32 reuse hits per cold call, at every pool size.
    let scheme = EmulationScheme::EgemmTc;
    let tk = 8usize;
    let (sa, sb) = split_pair(23, 29, 31, scheme, 55);
    for threads in [1usize, 2, 4] {
        let rt = EngineRuntime::new(RuntimeConfig {
            threads,
            cache_bytes: 0,
            ..Default::default()
        });
        let cfg = EngineConfig {
            mc: 5,
            nc: 16,
            kc: 8,
            threads,
            ..Default::default()
        };
        for call in 0..2 {
            let before = rt.sched_stats();
            let _ = gemm_blocked_in(&rt, &sa, &sb, None, scheme, tk, cfg);
            let d = rt.sched_stats().delta_since(&before);
            assert_eq!(
                d.panels_packed, 8,
                "threads={threads} call={call}: each (jc,pc) slot must pack exactly once"
            );
            assert_eq!(
                d.panel_reuse_hits, 32,
                "threads={threads} call={call}: remaining row tiles must reuse"
            );
        }
    }
}

#[test]
fn mutated_operand_misses_and_follows_new_data() {
    let scheme = EmulationScheme::EgemmTc;
    let eg = egemm_on(scheme, RuntimeConfig::default());
    let a = Matrix::<f32>::random_uniform(9, 21, 77);
    let mut b = Matrix::<f32>::random_uniform(21, 11, 78);
    let pb_old = eg.prepare(&b);
    let d1 = eg.gemm(&a, &b).d;
    let misses_before = eg.runtime().cache_stats().misses;

    // Mutate one element of B: the content fingerprint must change, so
    // the lookup misses and the result follows the new data.
    let s = b.as_mut_slice();
    s[5] += 1.0;
    let d2 = eg.gemm(&a, &b).d;
    assert!(
        eg.runtime().cache_stats().misses > misses_before,
        "mutated operand must miss the cache"
    );
    let want = cold_reference(scheme).gemm(&a, &b).d;
    for (x, y) in d2.as_slice().iter().zip(want.as_slice()) {
        assert_eq!(x.to_bits(), y.to_bits(), "stale data served after mutation");
    }

    // The handle prepared before the mutation pins the *old* data: it
    // still reproduces the original result, eviction or not.
    let d1_again = eg.gemm_prepared(&a, &pb_old, None).d;
    for (x, y) in d1_again.as_slice().iter().zip(d1.as_slice()) {
        assert_eq!(x.to_bits(), y.to_bits(), "prepared handle lost its data");
    }
}

#[test]
fn adversarial_shapes_bit_identical() {
    // 1 x k x 1, tile-size non-multiples, m << n, m >> n — every scheme,
    // every tk, checked against the crate's entrywise oracle where
    // tk = 8 (its fixed chunk depth) and the scalar replay otherwise.
    let shapes = [
        (1usize, 19usize, 1usize),
        (7, 13, 11),
        (2, 37, 64),
        (64, 21, 2),
    ];
    for scheme in SCHEMES {
        for (m, k, n) in shapes {
            let (sa, sb) = split_pair(m, k, n, scheme, 0xC0FFEE);
            for tk in [4usize, 8, 16] {
                let cfg = EngineConfig {
                    mc: 5,
                    nc: 9,
                    kc: 12,
                    threads: 2,
                    ..Default::default()
                };
                let d = gemm_blocked(&sa, &sb, None, scheme, tk, cfg);
                for i in 0..m {
                    for j in 0..n {
                        let want = entrywise_tk(&sa, &sb, None, scheme, tk, 0, k, i, j);
                        assert_eq!(
                            d.get(i, j).to_bits(),
                            want.to_bits(),
                            "{scheme:?} {m}x{k}x{n} tk={tk} ({i},{j})"
                        );
                        if tk == 8 {
                            let oracle = emulated_gemm_entrywise(&sa, &sb, None, scheme, i, j);
                            assert_eq!(d.get(i, j).to_bits(), oracle.to_bits());
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn gemm_with_c_accumulation_regression() {
    // The public API path (split + engine + C seed) bit-matches the
    // entrywise oracle with the same C.
    let eg = Egemm::auto(DeviceSpec::t4());
    let a = Matrix::<f32>::random_uniform(18, 27, 5);
    let b = Matrix::<f32>::random_uniform(27, 14, 6);
    let c = Matrix::<f32>::random_uniform(18, 14, 7);
    let sa = SplitMatrix::split(&a, eg.scheme.split_scheme());
    let sb = SplitMatrix::split(&b, eg.scheme.split_scheme());
    let out = eg.gemm_with_c(&a, &b, Some(&c));
    for i in 0..18 {
        for j in 0..14 {
            let want = emulated_gemm_entrywise(&sa, &sb, Some(&c), eg.scheme, i, j);
            assert_eq!(out.d.get(i, j).to_bits(), want.to_bits(), "({i},{j})");
        }
    }
}

#[test]
fn row_sampling_validates_upfront() {
    let scheme = EmulationScheme::EgemmTc;
    let (sa, sb) = split_pair(6, 8, 4, scheme, 9);
    // Valid ascending sample works and bit-matches the full product.
    let full = egemm::emulated_gemm(&sa, &sb, None, scheme);
    let sampled = emulated_gemm_rows(&sa, &sb, &[1, 4, 5], scheme);
    for (ri, &r) in [1usize, 4, 5].iter().enumerate() {
        for j in 0..4 {
            assert_eq!(sampled.get(ri, j).to_bits(), full.get(r, j).to_bits());
        }
    }
    // Out-of-range and unsorted inputs fail fast with clear messages.
    let oob = std::panic::catch_unwind(|| emulated_gemm_rows(&sa, &sb, &[6], scheme));
    let msg = *oob.unwrap_err().downcast::<String>().unwrap();
    assert!(msg.contains("out of range"), "{msg}");
    let dup = std::panic::catch_unwind(|| emulated_gemm_rows(&sa, &sb, &[2, 2], scheme));
    let msg = *dup.unwrap_err().downcast::<String>().unwrap();
    assert!(msg.contains("strictly ascending"), "{msg}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// JIT-dispatched execution bit-equals the interpreted microkernel
    /// across schemes, pool sizes, split-K offsets, and ragged shapes.
    /// On hosts without a JIT backend both configs run interpreted and
    /// the property holds trivially; everywhere else this is the
    /// end-to-end check that compiled kernels are drop-in replacements.
    #[test]
    fn jit_bit_identical_to_interpreted(
        m in 1usize..24,
        k in 1usize..48,
        n in 1usize..40,
        scheme_idx in 0usize..4,
        tk_idx in 0usize..3,
        pool_idx in 0usize..2,
        cut_num in 0usize..8,
        seed in 0u64..1000,
    ) {
        let scheme = SCHEMES[scheme_idx];
        let tk = [4usize, 8, 16][tk_idx];
        let threads = [1usize, 4][pool_idx];
        let (sa, sb) = split_pair(m, k, n, scheme, seed);
        let base = EngineConfig { mc: 8, nc: 32, kc: 16, threads, ..Default::default() };
        let jit_cfg = EngineConfig { jit: true, ..base };
        let int_cfg = EngineConfig { jit: false, ..base };

        let dj = gemm_blocked(&sa, &sb, None, scheme, tk, jit_cfg);
        let di = gemm_blocked(&sa, &sb, None, scheme, tk, int_cfg);
        for (x, y) in dj.as_slice().iter().zip(di.as_slice()) {
            prop_assert_eq!(
                x.to_bits(), y.to_bits(),
                "{:?} {}x{}x{} tk={} threads={}", scheme, m, k, n, tk, threads
            );
        }

        // Split-K slice: kernels bake the panel depth, so an offset
        // range exercises short first/last panels under the JIT too.
        let k_lo = (cut_num * k / 8).min(k - 1);
        let rj = gemm_blocked_range(&sa, &sb, k_lo, k, scheme, tk, jit_cfg);
        let ri = gemm_blocked_range(&sa, &sb, k_lo, k, scheme, tk, int_cfg);
        for (x, y) in rj.as_slice().iter().zip(ri.as_slice()) {
            prop_assert_eq!(
                x.to_bits(), y.to_bits(),
                "range [{}..{}) {:?} tk={} threads={}", k_lo, k, scheme, tk, threads
            );
        }
    }
}

#[test]
fn jit_edge_masks_bit_identical() {
    // Deterministic sweep over every column residue a tile can end
    // with: 1..=16 covers all single-strip (AVX) edge masks, 17..=32
    // all dual-strip (AVX-512) masks, 33 a dual-strip pair plus a lone
    // ragged strip. Row residues cycle 1..=4 alongside; k = 20 with
    // kc = 16 gives one looped panel (two tk=8 chunks) and one
    // ragged-only panel (4 deep).
    let scheme = EmulationScheme::MarkidisFourTerm; // most term planes
    let tk = 8usize;
    for n in 1usize..=33 {
        let m = 4 + (n % 4) + 1; // rows residue 1..=4 across the sweep
        let (sa, sb) = split_pair(m, 20, n, scheme, n as u64);
        let base = EngineConfig {
            mc: 8,
            nc: 64,
            kc: 16,
            threads: 1,
            ..Default::default()
        };
        let dj = gemm_blocked(&sa, &sb, None, scheme, tk, base);
        let di = gemm_blocked(
            &sa,
            &sb,
            None,
            scheme,
            tk,
            EngineConfig { jit: false, ..base },
        );
        for (x, y) in dj.as_slice().iter().zip(di.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits(), "edge sweep n={n} m={m}");
        }
    }
}

#[test]
fn jit_cache_compiles_each_key_exactly_once() {
    // Same shapes, same runtime: the second call must be served
    // entirely by the compiled-kernel cache (and the per-worker memos)
    // without a single new compilation.
    let scheme = EmulationScheme::EgemmTc;
    let tk = 8usize;
    let (sa, sb) = split_pair(23, 29, 31, scheme, 91);
    let rt = EngineRuntime::new(RuntimeConfig {
        threads: 2,
        ..Default::default()
    });
    let cfg = EngineConfig {
        mc: 8,
        nc: 32,
        kc: 16,
        threads: 2,
        ..Default::default()
    };
    let d1 = gemm_blocked_in(&rt, &sa, &sb, None, scheme, tk, cfg);
    let after1 = rt.cache_stats();
    let d2 = gemm_blocked_in(&rt, &sa, &sb, None, scheme, tk, cfg);
    let after2 = rt.cache_stats();
    assert_eq!(
        after1.jit_compiles, after2.jit_compiles,
        "a repeat call with identical shape classes recompiled kernels"
    );
    if egemm::jit_available() {
        assert!(
            after1.jit_compiles > 0,
            "JIT available but nothing compiled"
        );
        assert!(
            after2.jit_hits > after1.jit_hits,
            "second call never hit the compiled-kernel cache"
        );
        assert!(after2.jit_code_bytes > 0 && after2.jit_compile_ns > 0);
    } else {
        assert_eq!(after1.jit_compiles, 0, "JIT unavailable but compiled");
    }
    for (x, y) in d1.as_slice().iter().zip(d2.as_slice()) {
        assert_eq!(x.to_bits(), y.to_bits(), "cached kernels changed the bits");
    }
}
