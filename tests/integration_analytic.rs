//! Cross-crate integration: analytic model vs the timing simulator.
//!
//! §6's point is that the model picks good hyper-parameters *without*
//! trial-and-error. Here we close the loop: the configuration the solver
//! picks must actually be (near-)optimal when every feasible candidate is
//! costed through the full pipeline simulator — i.e. the model's cheap
//! objective is a faithful proxy for the expensive truth.

use egemm::{build_kernel, solve_tiling, AnalyticModel, EmulationScheme, KernelOpts};
use egemm_matrix::GemmShape;
use egemm_tcsim::{kernel_time, DeviceSpec};

#[test]
fn solver_choice_is_near_optimal_under_full_simulation() {
    let spec = DeviceSpec::t4();
    let model = AnalyticModel::for_device(&spec);
    let chosen = solve_tiling(&model).expect("solution");
    let shape = GemmShape::square(8192);
    let time_of = |cfg| {
        let d = build_kernel(
            &spec,
            &cfg,
            shape,
            EmulationScheme::EgemmTc,
            KernelOpts::default(),
        );
        kernel_time(&spec, &d).time_s
    };
    let chosen_time = time_of(chosen.config);
    let times: Vec<f64> = model
        .feasible_candidates()
        .iter()
        .map(|c| time_of(c.config))
        .collect();
    assert!(
        times.len() > 3,
        "need a meaningful candidate set, got {}",
        times.len()
    );
    let best = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let beaten_clearly = times.iter().filter(|&&t| t < chosen_time * 0.95).count();
    // §6 claims the model replaces trial-and-error, not that it is the
    // global optimum of the full pipeline simulation: require the choice
    // to be within 25% of the simulated best, with at most a quarter of
    // the feasible set beating it by more than 5%.
    assert!(
        chosen_time <= best * 1.25,
        "analytic choice {chosen_time} vs simulated best {best}"
    );
    assert!(
        beaten_clearly * 4 <= times.len(),
        "analytic choice beaten by >5% by {beaten_clearly}/{} candidates",
        times.len()
    );
}

#[test]
fn objective_correlates_with_simulated_throughput() {
    // Spearman-ish check: among feasible candidates, higher Eq. 4
    // objective should not systematically mean lower simulated TFLOPS.
    let spec = DeviceSpec::t4();
    let model = AnalyticModel::for_device(&spec);
    let shape = GemmShape::square(8192);
    let mut pts: Vec<(f64, f64)> = model
        .feasible_candidates()
        .into_iter()
        .map(|c| {
            let d = build_kernel(
                &spec,
                &c.config,
                shape,
                EmulationScheme::EgemmTc,
                KernelOpts::default(),
            );
            (c.objective, kernel_time(&spec, &d).tflops)
        })
        .collect();
    pts.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    let lo_third: f64 =
        pts[..pts.len() / 3].iter().map(|p| p.1).sum::<f64>() / (pts.len() / 3) as f64;
    let hi_third: f64 = pts[pts.len() * 2 / 3..].iter().map(|p| p.1).sum::<f64>()
        / (pts.len() - pts.len() * 2 / 3) as f64;
    assert!(
        hi_third >= lo_third,
        "high-objective candidates average {hi_third} TFLOPS < low-objective {lo_third}"
    );
}

#[test]
fn infeasible_register_points_would_spill_in_simulation() {
    // A config the model rejects for register pressure must indeed exceed
    // the occupancy model's architectural bound.
    let spec = DeviceSpec::t4();
    let model = AnalyticModel::for_device(&spec);
    let cfg = egemm::TilingConfig {
        bm: 256,
        bn: 128,
        bk: 32,
        wm: 128,
        wn: 32,
        wk: 8,
    };
    assert!(model.evaluate(cfg).is_none());
    assert!(cfg.regs_per_thread() > spec.max_registers_per_thread);
}

#[test]
fn budget_only_interface() {
    // §6: "To support different GPUs, the user only needs to provide a
    // small set of resource budgets." Shrink the register budget and the
    // solver must adapt with a smaller block tile.
    let spec = DeviceSpec::t4();
    let mut model = AnalyticModel::for_device(&spec);
    model.budget.register_file_bytes /= 2; // 128 KB register file
    let best = solve_tiling(&model).expect("still feasible");
    assert!(
        best.config.bm * best.config.bn < 128 * 128,
        "smaller budget must shrink the tile: got {}",
        best.config
    );
    assert!(best.register_bytes <= model.budget.register_file_bytes);
}
