//! Integration tests of the telemetry layer's contracts: tracing and
//! metrics are pure observers (outputs are bit-identical with either
//! enabled or disabled, and with the numerical-health probe on or off,
//! on solo and multi-worker pools), the per-thread trace rings absorb
//! overflow by dropping the oldest events — never by reallocating or
//! blocking the recording thread — and sharded histograms merge
//! concurrent writes into exact totals.

use std::sync::Mutex;

use egemm::telemetry::hist::LogHistogram;
use egemm::telemetry::{self, metrics, Phase, RING_CAPACITY};
use egemm::{Egemm, EngineRuntime, RuntimeConfig, TilingConfig};
use egemm_matrix::Matrix;
use egemm_tcsim::DeviceSpec;
use proptest::prelude::*;

/// The enabled flag and the ring registry are process-global, so tests
/// that flip tracing must not interleave within this binary.
static TRACE_LOCK: Mutex<()> = Mutex::new(());

/// An engine on a private runtime with a pinned pool size, so the two
/// sides of a comparison start from identical (empty) cache state.
fn engine(threads: usize) -> Egemm {
    let rt = EngineRuntime::new(RuntimeConfig {
        threads,
        ..RuntimeConfig::default()
    });
    Egemm::new(DeviceSpec::t4(), TilingConfig::T4_PAPER).with_runtime(rt)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Same operands, fresh runtimes: the traced product must equal the
    /// untraced one to the bit, whether the pool is solo (threads = 1)
    /// or parallel (threads = 4). Tracing that perturbed scheduling into
    /// a different accumulation grouping would show up here.
    #[test]
    fn tracing_never_changes_output_bits(
        m in 1usize..96,
        n in 1usize..96,
        k in 1usize..96,
        pool in 0usize..2,
        seed in 0u64..1000,
    ) {
        let threads = [1usize, 4][pool];
        let _g = TRACE_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let a = Matrix::<f32>::random_uniform(m, k, seed + 1);
        let b = Matrix::<f32>::random_uniform(k, n, seed + 2);

        telemetry::set_enabled(false);
        let plain = engine(threads).gemm(&a, &b);
        prop_assert!(plain.report.is_none(), "report produced while tracing is off");

        telemetry::set_enabled(true);
        let traced = engine(threads).gemm(&a, &b);
        telemetry::set_enabled(false);

        for (i, (x, y)) in traced.d.as_slice().iter().zip(plain.d.as_slice()).enumerate() {
            prop_assert_eq!(
                x.to_bits(), y.to_bits(),
                "element {} differs traced vs untraced ({}x{}x{}, {} thread(s))",
                i, m, n, k, threads
            );
        }
        // And the traced side actually observed the run.
        let report = traced.report.expect("tracing on must yield a report");
        prop_assert!(report.phase_count(Phase::Tile) >= 1, "no tile spans recorded");
        prop_assert!(report.phase_count(Phase::Worker) >= 1, "no worker spans recorded");
        prop_assert!(!report.workers.is_empty(), "no worker lanes attributed");
    }

    /// The aggregate metrics plane and the numerical-health probe must
    /// be pure observers too: the same operands on fresh runtimes yield
    /// bit-identical products with metrics off, with metrics on, and
    /// with every call probed (rate 1). The probe only *reads* the
    /// output; a probe that perturbed the result would show up here.
    #[test]
    fn metrics_and_probe_never_change_output_bits(
        m in 1usize..64,
        n in 1usize..64,
        k in 1usize..64,
        pool in 0usize..2,
        seed in 0u64..1000,
    ) {
        let threads = [1usize, 4][pool];
        let _g = TRACE_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let a = Matrix::<f32>::random_uniform(m, k, seed + 1);
        let b = Matrix::<f32>::random_uniform(k, n, seed + 2);

        metrics::set_enabled(false);
        egemm::set_probe_rate(0);
        let plain = engine(threads).gemm(&a, &b);

        metrics::set_enabled(true);
        let metered = engine(threads).gemm(&a, &b);

        egemm::set_probe_rate(1);
        let probed = engine(threads).gemm(&a, &b);
        egemm::set_probe_rate(0);

        for (i, (x, y)) in metered.d.as_slice().iter().zip(plain.d.as_slice()).enumerate() {
            prop_assert_eq!(
                x.to_bits(), y.to_bits(),
                "element {} differs metered vs unmetered ({}x{}x{}, {} thread(s))",
                i, m, n, k, threads
            );
        }
        for (i, (x, y)) in probed.d.as_slice().iter().zip(plain.d.as_slice()).enumerate() {
            prop_assert_eq!(
                x.to_bits(), y.to_bits(),
                "element {} differs probed vs unprobed ({}x{}x{}, {} thread(s))",
                i, m, n, k, threads
            );
        }
    }

    /// Concurrent observations into a sharded histogram must merge to
    /// exact totals at snapshot time: nothing lost, nothing double
    /// counted, the sum preserved to the unit — whatever the shard pool
    /// size (fewer shards than threads forces contended shards, more
    /// shards than threads leaves some idle).
    #[test]
    fn histogram_shards_merge_to_exact_totals(
        pool in 0usize..3,
        per_thread in 1usize..400,
        seed in 0u64..10_000,
    ) {
        let shards = [1usize, 4, 8][pool];
        let hist = LogHistogram::with_shards(shards);
        let writers = 4usize;

        // Deterministic per-thread values from an LCG; recompute the
        // expected totals with the same generator.
        let value = |t: u64, i: u64| {
            let x = (seed + 1)
                .wrapping_mul(6364136223846793005)
                .wrapping_add(t * 1_000_003 + i);
            x >> 40 // keep values modest so the sum stays exact
        };
        std::thread::scope(|scope| {
            for t in 0..writers as u64 {
                let hist = &hist;
                scope.spawn(move || {
                    for i in 0..per_thread as u64 {
                        hist.observe(value(t, i));
                    }
                });
            }
        });

        let snap = hist.snapshot();
        let mut want_sum = 0u64;
        for t in 0..writers as u64 {
            for i in 0..per_thread as u64 {
                want_sum += value(t, i);
            }
        }
        prop_assert_eq!(snap.count, (writers * per_thread) as u64,
            "count lost or duplicated across {} shard(s)", shards);
        prop_assert_eq!(snap.sum, want_sum,
            "sum not preserved across {} shard(s)", shards);
        prop_assert_eq!(snap.counts.iter().sum::<u64>(), snap.count,
            "bucket counts disagree with the total");
    }
}

/// A batched call over one shared B must show the sharing in its
/// attached report: the cache delta records exactly one fused pack for
/// B (every other lookup hits) and zero splits — the fused pipeline
/// stages no split planes — at both pool sizes. This is the
/// telemetry-side witness of the amortization the serving tier's
/// bucketing exists to exploit.
#[test]
fn batched_report_shows_shared_b_prepared_once() {
    let _g = TRACE_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    for threads in [1usize, 4] {
        let eng = engine(threads); // private runtime: counters start at zero
        let b0 = Matrix::<f32>::random_uniform(24, 16, 7);
        let a: Vec<Matrix<f32>> = (0..4)
            .map(|i| Matrix::random_uniform(32, 24, 70 + i))
            .collect();
        let b: Vec<Matrix<f32>> = (0..4).map(|_| b0.clone()).collect();

        telemetry::set_enabled(true);
        let out = eng.gemm_batched(&a, &b);
        telemetry::set_enabled(false);

        let report = out.report.expect("tracing on must yield a batch report");
        assert_eq!(
            report.cache.packs, 1,
            "shared B must pack once ({threads} thread(s)): {:?}",
            report.cache
        );
        assert_eq!(
            report.cache.splits, 0,
            "fused pipeline must not stage splits ({threads} thread(s)): {:?}",
            report.cache
        );
        assert_eq!(
            report.cache.hits,
            a.len() as u64 - 1,
            "all B lookups after the first must hit ({threads} thread(s)): {:?}",
            report.cache
        );
        // The fused pipeline records where the staging went: split
        // planes avoided for the one packed B plus each raw A operand.
        assert_eq!(
            report.cache.bytes_staging_saved,
            (12 * (24 * 16) + a.len() * 12 * (32 * 24)) as u64,
            "({threads} thread(s)): {:?}",
            report.cache
        );
        // And the fused-split-pack phase fired (B's whole-operand pack
        // plus per-tile A packs inside the workers).
        assert!(
            report.phase_count(Phase::FusedSplitPack) >= 1,
            "no fused_split_pack spans ({threads} thread(s))"
        );
    }
}

/// Pushing far more spans than a ring holds must neither grow the ring
/// nor stall the recorder: the drain returns exactly `RING_CAPACITY`
/// surviving events — the newest ones — and an exact count of drops.
#[test]
fn ring_overflow_drops_oldest_without_growing() {
    let _g = TRACE_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    telemetry::set_enabled(true);
    telemetry::drain(); // discard anything this thread recorded earlier

    let total = RING_CAPACITY + 257;
    for i in 0..total {
        let t = telemetry::span_start();
        telemetry::span_end(Phase::Split, t, i as u64);
    }
    telemetry::set_enabled(false);

    let me = telemetry::worker_id();
    let lanes = telemetry::drain();
    let lane = lanes
        .into_iter()
        .find(|l| l.worker == me)
        .expect("this thread registered a lane");
    assert_eq!(lane.events.len(), RING_CAPACITY, "ring grew past capacity");
    assert_eq!(lane.dropped as usize, total - RING_CAPACITY);
    // Overwrite-oldest: the survivors are the most recent events, in order.
    assert_eq!(lane.events[0].detail, (total - RING_CAPACITY) as u64);
    assert_eq!(lane.events[RING_CAPACITY - 1].detail, (total - 1) as u64);

    // A second drain finds the lane empty — events are consumed once.
    let lanes = telemetry::drain();
    let lane = lanes.into_iter().find(|l| l.worker == me).unwrap();
    assert!(lane.events.is_empty(), "drain did not consume events");
    assert_eq!(lane.dropped, 0, "drop counter not reset by drain");
}
