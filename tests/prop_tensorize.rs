//! Property-based tests of the tensorization: the explicit block/warp/TC
//! hierarchy must be numerically transparent at *every* valid tiling, and
//! its traffic counters must respond to FRAG caching correctly.

use egemm::tensorize::TensorizedGemm;
use egemm::{emulated_gemm, EmulationScheme, SplitMatrix, TilingConfig};
use egemm_matrix::Matrix;
use proptest::prelude::*;

/// Valid small tilings: TC-divisible warp tiles dividing block tiles.
fn arb_tiling() -> impl Strategy<Value = TilingConfig> {
    (1usize..=2, 1usize..=2, 1usize..=2, 1usize..=2, 1usize..=2).prop_map(
        |(wm_t, wn_t, bk_t, bm_w, bn_w)| {
            let wm = 16 * wm_t;
            let wn = 8 * wn_t;
            let wk = 8;
            TilingConfig {
                bm: wm * bm_w,
                bn: wn * bn_w,
                bk: wk * bk_t,
                wm,
                wn,
                wk,
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tiled executor equals the flat executor bitwise at any valid
    /// tiling when the matrix divides the block grid evenly.
    #[test]
    fn tiled_equals_flat_at_any_tiling(cfg in arb_tiling(), seed in 0u64..500) {
        let m = cfg.bm * 2;
        let k = cfg.bk * 2;
        let n = cfg.bn * 2;
        let a = Matrix::<f32>::random_uniform(m, k, seed);
        let b = Matrix::<f32>::random_uniform(k, n, seed + 1);
        let sa = SplitMatrix::split(&a, egemm_fp::SplitScheme::Round);
        let sb = SplitMatrix::split(&b, egemm_fp::SplitScheme::Round);
        let exec = TensorizedGemm { config: cfg, frag_caching: true };
        let (tiled, trace) = exec.execute(&sa, &sb, None, EmulationScheme::EgemmTc);
        let flat = emulated_gemm(&sa, &sb, None, EmulationScheme::EgemmTc);
        for (x, y) in tiled.as_slice().iter().zip(flat.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
        // HMMA count closed form.
        let expect = (m / 16) * (n / 8) * (k / 8) * 4;
        prop_assert_eq!(trace.hmma_count, expect as u64);
    }

    /// FRAG caching never increases traffic and never changes results, at
    /// any tiling.
    #[test]
    fn caching_monotone_at_any_tiling(cfg in arb_tiling(), seed in 0u64..200) {
        let m = cfg.bm;
        let k = cfg.bk * 2;
        let n = cfg.bn;
        let a = Matrix::<f32>::random_uniform(m, k, seed);
        let b = Matrix::<f32>::random_uniform(k, n, seed + 3);
        let sa = SplitMatrix::split(&a, egemm_fp::SplitScheme::Round);
        let sb = SplitMatrix::split(&b, egemm_fp::SplitScheme::Round);
        let (d_on, t_on) = TensorizedGemm { config: cfg, frag_caching: true }
            .execute(&sa, &sb, None, EmulationScheme::EgemmTc);
        let (d_off, t_off) = TensorizedGemm { config: cfg, frag_caching: false }
            .execute(&sa, &sb, None, EmulationScheme::EgemmTc);
        prop_assert_eq!(d_on, d_off);
        prop_assert!(t_on.operand_smem_bytes <= t_off.operand_smem_bytes);
        prop_assert!(t_on.c_traffic_bytes <= t_off.c_traffic_bytes);
        prop_assert_eq!(t_on.gmem_bytes, t_off.gmem_bytes);
    }

    /// Split-K at any slice count stays within the fused error envelope
    /// and reduces to it at one slice.
    #[test]
    fn split_k_envelope(slices in 1usize..6, seed in 0u64..200) {
        let eng = egemm::Egemm::new(
            egemm_tcsim::DeviceSpec::t4(),
            TilingConfig::T4_PAPER,
        );
        let a = Matrix::<f32>::random_uniform(16, 160, seed);
        let b = Matrix::<f32>::random_uniform(160, 16, seed + 1);
        let fused = eng.gemm(&a, &b).d;
        let sk = eng.gemm_split_k(&a, &b, slices);
        for (x, y) in sk.d.as_slice().iter().zip(fused.as_slice()) {
            // Regrouping the 160-deep reduction moves results by at most
            // a few ULPs of the partial magnitudes.
            prop_assert!((x - y).abs() <= 1e-4, "{} vs {}", x, y);
        }
    }
}
