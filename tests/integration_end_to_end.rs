//! End-to-end integration of the public API: Egemm over the whole stack,
//! at sizes exercising multiple blocks, multiple k-chunks and ragged
//! edges, checked for both numerics and simulated performance sanity.

use egemm::{Egemm, EmulationScheme, KernelOpts, TilingConfig};
use egemm_fp::ErrorStats;
use egemm_matrix::{gemm_f64_of_f32, GemmShape, Matrix};
use egemm_tcsim::DeviceSpec;

#[test]
fn multi_block_gemm_full_pipeline() {
    // 512^3 spans a 4x4 grid of (128,128) blocks and 16 k-chunks.
    let eg = Egemm::auto(DeviceSpec::t4());
    let a = Matrix::<f32>::random_uniform(512, 512, 1);
    let b = Matrix::<f32>::random_uniform(512, 512, 2);
    let out = eg.gemm(&a, &b);
    let truth = gemm_f64_of_f32(&a, &b);
    let stats = ErrorStats::compare(&out.d.to_f64_vec(), &truth.to_f64_vec());
    // k = 512 sums of [-1,1] products at 21-bit operand precision:
    // max error well below 1e-2 (Figure 7 reports ~1e-4 at N=512 against
    // the f32 reference; against f64 truth the f32 rounding itself adds).
    assert!(stats.max_abs < 5e-3, "max abs err {}", stats.max_abs);
    assert!(stats.rms < 1e-3, "rms {}", stats.rms);
    assert!(out.timing.time_s > 0.0);
    assert_eq!(out.shape, GemmShape::square(512));
}

#[test]
fn ragged_dimensions_work_end_to_end() {
    let eg = Egemm::auto(DeviceSpec::t4());
    let a = Matrix::<f32>::random_uniform(200, 130, 3);
    let b = Matrix::<f32>::random_uniform(130, 70, 4);
    let out = eg.gemm(&a, &b);
    assert_eq!((out.d.rows(), out.d.cols()), (200, 70));
    let truth = gemm_f64_of_f32(&a, &b);
    let stats = ErrorStats::compare(&out.d.to_f64_vec(), &truth.to_f64_vec());
    assert!(stats.max_abs < 2e-3, "max abs err {}", stats.max_abs);
}

#[test]
fn paper_error_ratio_reproduced_at_256() {
    // Figure 7 at N=256: EGEMM-TC ~3e-5 abs error vs cuBLAS-TC-Half ~1e-2
    // (a ~350x gap on average across sizes). Reproduce the ordering and
    // magnitude band against the single-precision reference.
    let n = 256;
    let a = Matrix::<f32>::random_uniform(n, n, 5);
    let b = Matrix::<f32>::random_uniform(n, n, 6);
    let mut ref32 = Matrix::<f32>::zeros(n, n);
    egemm_matrix::gemm_f32_reference(&a, &b, &mut ref32);
    let ref64 = ref32.to_f64_vec();

    let t4 = DeviceSpec::t4();
    let err = |scheme: EmulationScheme| {
        let eg = Egemm::new(t4, TilingConfig::T4_PAPER).with_scheme(scheme);
        let d = eg.gemm(&a, &b).d;
        ErrorStats::compare(&d.to_f64_vec(), &ref64).max_abs
    };
    let e_eg = err(EmulationScheme::EgemmTc);
    let e_mk = err(EmulationScheme::Markidis);
    let e_half = err(EmulationScheme::TcHalf);
    assert!(e_eg < 3e-4, "EGEMM-TC max err {e_eg} (paper: ~3e-5 at 256)");
    assert!(e_half > 1e-3, "half err {e_half} (paper: ~1e-2 at 256)");
    assert!(
        e_half / e_eg > 50.0,
        "error reduction {} (paper: ~350x)",
        e_half / e_eg
    );
    assert!(e_eg <= e_mk, "round-split {e_eg} vs truncate-split {e_mk}");
}

#[test]
fn optimization_switches_preserve_numerics() {
    // Turning kernel optimizations off changes time, never values.
    let a = Matrix::<f32>::random_uniform(160, 96, 7);
    let b = Matrix::<f32>::random_uniform(96, 144, 8);
    let base = Egemm::auto(DeviceSpec::t4());
    // Without FRAG caching the C accumulator lives in shared memory, which
    // forces a smaller block tile (the paper-tiling block would not fit an
    // SM) — exactly what generic library kernels do.
    let slow = Egemm::new(
        DeviceSpec::t4(),
        egemm::TilingConfig {
            bm: 64,
            bn: 64,
            bk: 32,
            wm: 32,
            wn: 32,
            wk: 8,
        },
    )
    .with_opts(KernelOpts {
        frag_caching: false,
        latency_hiding: false,
        launches: 4,
        ..KernelOpts::default()
    });
    let d1 = base.gemm(&a, &b);
    let d2 = slow.gemm(&a, &b);
    assert_eq!(d1.d, d2.d);
    assert!(d2.timing.time_s > d1.timing.time_s);
}

#[test]
fn deterministic_across_runs() {
    let eg = Egemm::auto(DeviceSpec::t4());
    let a = Matrix::<f32>::random_uniform(128, 128, 9);
    let b = Matrix::<f32>::random_uniform(128, 128, 10);
    let d1 = eg.gemm(&a, &b).d;
    let d2 = eg.gemm(&a, &b).d;
    // Rayon parallelism must not perturb the bit-exact result.
    for (x, y) in d1.as_slice().iter().zip(d2.as_slice()) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}

#[test]
fn rtx6000_full_pipeline() {
    let eg = Egemm::auto(DeviceSpec::rtx6000());
    let a = Matrix::<f32>::random_uniform(256, 256, 11);
    let b = Matrix::<f32>::random_uniform(256, 256, 12);
    let out = eg.gemm(&a, &b);
    let truth = gemm_f64_of_f32(&a, &b);
    let stats = ErrorStats::compare(&out.d.to_f64_vec(), &truth.to_f64_vec());
    assert!(stats.max_abs < 2e-3);
}
