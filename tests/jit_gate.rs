//! Negative test for the `EGEMM_JIT=0` contract: with the knob off,
//! the engine must never map an executable page — not "map one and not
//! use it", but zero `mmap(PROT_EXEC)` activity for the life of the
//! process — and results must stay bit-identical to the interpreted
//! path.
//!
//! This lives in its own test binary because the knob is latched once
//! per process (first runtime construction); it cannot share a process
//! with tests that exercise the JIT. The harness runs each integration
//! test binary as a separate process, so setting the variable here is
//! safe and race-free as long as it happens before any engine work.

use egemm::emulation::EmulationScheme;
use egemm::engine::{gemm_blocked, EngineConfig};
use egemm::split_matrix::SplitMatrix;
use egemm::{emulated_gemm_tk, jit_available, jit_exec_mappings};
use egemm_matrix::Matrix;

#[test]
fn jit_disabled_process_never_maps_executable_pages() {
    // Latch the knob before the first EngineRuntime exists.
    std::env::set_var("EGEMM_JIT", "0");
    assert!(!jit_available(), "EGEMM_JIT=0 must report unavailable");

    let schemes = [
        EmulationScheme::EgemmTc,
        EmulationScheme::Markidis,
        EmulationScheme::MarkidisFourTerm,
        EmulationScheme::TcHalf,
    ];
    for (scheme, (m, k, n)) in schemes.into_iter().zip([
        (33, 40, 37), // ragged edges in every dimension
        (16, 24, 32),
        (7, 9, 50),
        (64, 64, 64),
    ]) {
        let a = Matrix::<f32>::random_uniform(m, k, 11);
        let b = Matrix::<f32>::random_uniform(k, n, 13);
        let sa = SplitMatrix::split(&a, scheme.split_scheme());
        let sb = SplitMatrix::split(&b, scheme.split_scheme());
        let tk = 8;
        // jit: true in the config is deliberate — the env knob must
        // override per-call opt-ins.
        let cfg = EngineConfig {
            mc: 8,
            nc: 32,
            kc: 16,
            threads: 2,
            ..EngineConfig::default()
        };
        assert!(cfg.jit, "default EngineConfig must ask for the JIT");
        let d = gemm_blocked(&sa, &sb, None, scheme, tk, cfg);
        let want = emulated_gemm_tk(&sa, &sb, None, scheme, tk);
        for (x, y) in d.as_slice().iter().zip(want.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits(), "{scheme:?} diverged");
        }
    }

    assert_eq!(
        jit_exec_mappings(),
        0,
        "EGEMM_JIT=0 process mapped executable pages"
    );
}
