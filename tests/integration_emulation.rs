//! Cross-crate integration: emulation algorithm + Tensor-Core substrate.
//!
//! Validates the paper's Algorithm 1 end-to-end against the simulated
//! device primitives: fragment-level WMMA calls, the flat functional
//! executor, the explicit tiled executor, and the f64 ground truth.

use egemm::{emulated_gemm, EmulationScheme, SplitMatrix, TilingConfig};
use egemm_fp::{max_abs_error, Half, SplitScheme};
use egemm_matrix::{gemm_f64_of_f32, Matrix};
use egemm_tcsim::frag::{mma_sync, Fragment, FragmentKind};
use egemm_tcsim::{tensor_core_mma, MmaShape};

/// Algorithm 1, literally, at the 16x16x16 WMMA granularity: four
/// `mma_sync` calls over round-split fragments must equal the flat
/// emulated GEMM bitwise.
#[test]
fn algorithm1_via_wmma_fragments_matches_executor() {
    let n = 16;
    let a = Matrix::<f32>::random_uniform(n, n, 1);
    let b = Matrix::<f32>::random_uniform(n, n, 2);
    let sa = SplitMatrix::split(&a, SplitScheme::Round);
    let sb = SplitMatrix::split(&b, SplitScheme::Round);

    // Fragment-level Algorithm 1. D starts at C = 0.
    let load = |m: &Matrix<Half>, kind| {
        let mut f = Fragment::new_operand(kind, n, n);
        f.load_half(m.as_slice());
        f
    };
    let a_lo = load(&sa.lo, FragmentKind::MatrixA);
    let a_hi = load(&sa.hi, FragmentKind::MatrixA);
    let b_lo = load(&sb.lo, FragmentKind::MatrixB);
    let b_hi = load(&sb.hi, FragmentKind::MatrixB);
    let mut d = Fragment::new_accumulator(n, n);
    let mut c = Fragment::new_accumulator(n, n);
    // Lines 5-8: wmma::mma_sync(A?, B?, acc) in lo-first order. The
    // 16x16x16 WMMA tile is one t_k=16 chunk, so the flat executor must be
    // asked for the same chunking: use a fresh SplitMatrix pair and the
    // entrywise semantics with tk=16 — equivalently, compute it here.
    for (al, bl) in [(true, true), (true, false), (false, true), (false, false)] {
        let af = if al { &a_lo } else { &a_hi };
        let bf = if bl { &b_lo } else { &b_hi };
        mma_sync(&mut d, af, bf, &c);
        c.float_payload_mut().copy_from_slice(d.float_payload());
    }

    // Reference: same order, scalar.
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0f32;
            for (al, bl) in [(true, true), (true, false), (false, true), (false, false)] {
                let ap = if al { &sa.lo_f32 } else { &sa.hi_f32 };
                let bp = if bl { &sb.lo_f32 } else { &sb.hi_f32 };
                for kk in 0..n {
                    acc += ap[i * n + kk] * bp[kk * n + j];
                }
            }
            assert_eq!(
                d.float_payload()[i * n + j].to_bits(),
                acc.to_bits(),
                "element ({i},{j})"
            );
        }
    }
}

/// The paper's profiling loop (Figure 3), against the substrate: d_TC must
/// be bitwise identical to d_FLOAT and differ from d_HALF.
#[test]
fn figure3_profiling_snippet() {
    let shape = MmaShape::WMMA_16X16X16;
    let a32 = Matrix::<f32>::random_uniform(16, 16, 3);
    let b32 = Matrix::<f32>::random_uniform(16, 16, 4);
    let a: Vec<Half> = a32.as_slice().iter().map(|&x| Half::from_f32(x)).collect();
    let b: Vec<Half> = b32.as_slice().iter().map(|&x| Half::from_f32(x)).collect();
    let c = vec![0f32; 256];
    let d_tc = tensor_core_mma(&a, &b, &c, shape);
    // d_FLOAT: CUDA-core f32 on the widened inputs.
    let mut d_float = vec![0f32; 256];
    for i in 0..16 {
        for j in 0..16 {
            let mut acc = 0f32;
            for k in 0..16 {
                acc += a[i * 16 + k].to_f32() * b[k * 16 + j].to_f32();
            }
            d_float[i * 16 + j] = acc;
        }
    }
    // d_HALF: all-half arithmetic.
    let mut d_half = vec![Half::ZERO; 256];
    for i in 0..16 {
        for j in 0..16 {
            let mut acc = Half::ZERO;
            for k in 0..16 {
                acc += a[i * 16 + k] * b[k * 16 + j];
            }
            d_half[i * 16 + j] = acc;
        }
    }
    assert!(d_tc
        .iter()
        .zip(&d_float)
        .all(|(x, y)| x.to_bits() == y.to_bits()));
    assert!(d_tc
        .iter()
        .zip(&d_half)
        .any(|(x, h)| x.to_bits() != h.to_f32().to_bits()));
}

/// Precision ordering across schemes on a mid-size GEMM — the Figure 7
/// stack: half ≫ Markidis > EGEMM-TC.
#[test]
fn scheme_precision_ordering() {
    let n = 128;
    let a = Matrix::<f32>::random_uniform(n, n, 5);
    let b = Matrix::<f32>::random_uniform(n, n, 6);
    let truth = gemm_f64_of_f32(&a, &b).to_f64_vec();
    let run = |scheme: EmulationScheme| {
        let sa = SplitMatrix::split(&a, scheme.split_scheme());
        let sb = SplitMatrix::split(&b, scheme.split_scheme());
        let d = emulated_gemm(&sa, &sb, None, scheme);
        max_abs_error(&d.to_f64_vec(), &truth)
    };
    let err_half = run(EmulationScheme::TcHalf);
    let err_markidis = run(EmulationScheme::Markidis);
    let err_egemm = run(EmulationScheme::EgemmTc);
    // At N = 128 the shared f32-accumulation noise can mask the split
    // difference for a single seed; require near-parity here and the
    // strict ordering at the k-dominated shape below.
    assert!(
        err_egemm <= err_markidis * 1.25,
        "EGEMM {err_egemm} must not exceed Markidis {err_markidis} by >25%"
    );
    assert!(
        err_markidis * 20.0 < err_half,
        "emulation must massively beat half: {err_markidis} vs {err_half}"
    );

    // Deep-k shape: representation error dominates and the round-split
    // advantage (paper: 2.33x) shows cleanly.
    let a = Matrix::<f32>::random_uniform(32, 2048, 7);
    let b = Matrix::<f32>::random_uniform(2048, 32, 8);
    let truth_deep = {
        let mut c = Matrix::<f32>::zeros(32, 32);
        egemm_matrix::gemm_f32_reference(&a, &b, &mut c);
        c.to_f64_vec()
    };
    let run_deep = |scheme: EmulationScheme| {
        let sa = SplitMatrix::split(&a, scheme.split_scheme());
        let sb = SplitMatrix::split(&b, scheme.split_scheme());
        let d = emulated_gemm(&sa, &sb, None, scheme);
        max_abs_error(&d.to_f64_vec(), &truth_deep)
    };
    let deep_eg = run_deep(EmulationScheme::EgemmTc);
    let deep_mk = run_deep(EmulationScheme::Markidis);
    assert!(
        deep_eg < deep_mk,
        "deep-k: EGEMM {deep_eg} must beat Markidis {deep_mk}"
    );
}

/// The emulation must not lose exactness on inputs that fit the extended
/// format: products of 10-bit-mantissa values accumulate exactly.
#[test]
fn exact_inputs_exact_outputs() {
    let n = 32;
    // Values with <= 10 significant bits: splits are exact and products
    // are exact in f32.
    let a = Matrix::from_fn(n, n, |r, c| ((r * 31 + c * 7) % 512) as f32 / 512.0);
    let b = Matrix::from_fn(n, n, |r, c| ((r * 13 + c * 3) % 512) as f32 / 512.0);
    let sa = SplitMatrix::split(&a, SplitScheme::Round);
    let sb = SplitMatrix::split(&b, SplitScheme::Round);
    let d = emulated_gemm(&sa, &sb, None, EmulationScheme::EgemmTc);
    let truth = gemm_f64_of_f32(&a, &b);
    for (x, y) in d.as_slice().iter().zip(truth.as_slice()) {
        // f32 accumulation of exact products: error only from the final
        // sums, tiny for n=32 sums of O(1) values.
        assert!(((*x as f64) - y).abs() < 1e-4);
    }
    // lo planes must be all zero for 10-bit inputs.
    assert!(sa.lo_f32.iter().all(|&x| x == 0.0));
}

/// Splitting commutes with the matrix layout: a transposed input's split
/// equals the split's transpose.
#[test]
fn split_transpose_commutes() {
    let a = Matrix::<f32>::random_uniform(20, 30, 7);
    let at = a.transpose();
    let s = SplitMatrix::split(&a, SplitScheme::Round);
    let st = SplitMatrix::split(&at, SplitScheme::Round);
    for r in 0..20 {
        for c in 0..30 {
            assert_eq!(s.hi.get(r, c).to_bits(), st.hi.get(c, r).to_bits());
            assert_eq!(s.lo.get(r, c).to_bits(), st.lo.get(c, r).to_bits());
        }
    }
}

/// Large-k error growth: error accumulates slowly with k (the paper's
/// Figure 7 "slow increase in max error").
#[test]
fn error_grows_sublinearly_with_k() {
    let m = 8;
    let n = 8;
    let errs: Vec<f64> = [64usize, 256, 1024]
        .iter()
        .map(|&k| {
            let a = Matrix::<f32>::random_uniform(m, k, 8);
            let b = Matrix::<f32>::random_uniform(k, n, 9);
            let sa = SplitMatrix::split(&a, SplitScheme::Round);
            let sb = SplitMatrix::split(&b, SplitScheme::Round);
            let d = emulated_gemm(&sa, &sb, None, EmulationScheme::EgemmTc);
            let truth = gemm_f64_of_f32(&a, &b);
            max_abs_error(&d.to_f64_vec(), &truth.to_f64_vec())
        })
        .collect();
    assert!(errs[2] > errs[0], "error should grow with k: {errs:?}");
    assert!(
        errs[2] < errs[0] * 64.0,
        "error growth should be sublinear in k (16x more terms): {errs:?}"
    );
    let _ = TilingConfig::T4_PAPER; // anchor the crate link
}
