//! Property-based tests of the timing substrate: the instruction
//! scheduler, occupancy model, kernel builder and analytic model must
//! behave monotonically and consistently over randomized inputs.

use egemm::{build_kernel, AnalyticModel, EmulationScheme, KernelOpts, TilingConfig};
use egemm_matrix::GemmShape;
use egemm_tcsim::{
    kernel_time, simulate_loop, simulate_loop_traced, DepRef, DeviceSpec, LoopBody, Op,
    ScheduleMode,
};
use proptest::prelude::*;

/// Random but structurally valid loop bodies: a staging pair, a few loads,
/// a few HMMAs depending on the last load.
fn arb_body() -> impl Strategy<Value = LoopBody> {
    (1usize..6, 1usize..24, 0usize..3).prop_map(|(n_lds, n_hmma, n_ldg)| {
        let mut b = LoopBody::new();
        let mut ldg_ids = Vec::new();
        for _ in 0..n_ldg {
            ldg_ids.push(b.push(Op::Ldg128, vec![]));
        }
        let mut last = None;
        for _ in 0..n_lds {
            last = Some(b.push(Op::Lds128, vec![]));
        }
        let deps = last.map(|l| vec![DepRef::Same(l)]).unwrap_or_default();
        for _ in 0..n_hmma {
            b.push(Op::Hmma1688, deps.clone());
        }
        for &g in &ldg_ids {
            b.push(Op::Sts128, vec![DepRef::Same(g)]);
        }
        b
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Interleaved issue never loses to sequential issue.
    #[test]
    fn interleaved_never_slower(body in arb_body(), warps in 1usize..5, iters in 1u64..12) {
        let spec = DeviceSpec::t4();
        let s = simulate_loop(&spec, &body, warps, iters, ScheduleMode::Sequential);
        let i = simulate_loop(&spec, &body, warps, iters, ScheduleMode::Interleaved);
        prop_assert!(i.cycles <= s.cycles, "interleaved {} > sequential {}", i.cycles, s.cycles);
        prop_assert_eq!(i.issued, s.issued);
    }

    /// More iterations never take fewer cycles; issue counts are exact.
    #[test]
    fn cycles_monotone_in_iterations(body in arb_body(), warps in 1usize..4) {
        let spec = DeviceSpec::t4();
        let c4 = simulate_loop(&spec, &body, warps, 4, ScheduleMode::Interleaved);
        let c8 = simulate_loop(&spec, &body, warps, 8, ScheduleMode::Interleaved);
        prop_assert!(c8.cycles >= c4.cycles);
        prop_assert_eq!(c8.issued, 2 * c4.issued);
    }

    /// Pipe-busy accounting is exact: sum of issue intervals of issued
    /// instructions, independent of schedule.
    #[test]
    fn pipe_busy_is_schedule_invariant(body in arb_body(), warps in 1usize..4) {
        let spec = DeviceSpec::t4();
        let s = simulate_loop(&spec, &body, warps, 6, ScheduleMode::Sequential);
        let i = simulate_loop(&spec, &body, warps, 6, ScheduleMode::Interleaved);
        prop_assert_eq!(s.pipe_busy, i.pipe_busy);
        // And the busy time never exceeds elapsed time per pipe.
        for p in egemm_tcsim::isa::Pipe::ALL {
            prop_assert!(s.pipe_busy[p.index()] <= s.cycles);
        }
    }

    /// Traces are complete and temporally consistent.
    #[test]
    fn traces_consistent(body in arb_body(), warps in 1usize..4, iters in 1u64..8) {
        let spec = DeviceSpec::t4();
        let (r, tr) = simulate_loop_traced(&spec, &body, warps, iters, ScheduleMode::Interleaved);
        prop_assert_eq!(tr.len() as u64, r.issued);
        prop_assert_eq!(r.issued, warps as u64 * iters * body.instrs.len() as u64);
        // Per warp, issues are strictly ordered (in-order issue).
        for w in 0..warps {
            let mut last = 0u64;
            let mut seen = false;
            for e in tr.iter().filter(|e| e.warp == w) {
                if seen {
                    prop_assert!(e.issue > last, "warp {w} issued out of order");
                }
                last = e.issue;
                seen = true;
                prop_assert!(e.complete > e.issue);
            }
        }
    }

    /// Kernel time is monotone in every problem dimension.
    #[test]
    fn kernel_time_monotone_in_shape(
        m in 1usize..16,
        n in 1usize..16,
        k in 1usize..16,
    ) {
        let spec = DeviceSpec::t4();
        let base = GemmShape::new(m * 256, n * 256, k * 256);
        let bigger_k = GemmShape::new(m * 256, n * 256, (k + 1) * 256);
        let time = |s: GemmShape| {
            let d = build_kernel(&spec, &TilingConfig::T4_PAPER, s, EmulationScheme::EgemmTc, KernelOpts::default());
            kernel_time(&spec, &d).time_s
        };
        prop_assert!(time(bigger_k) >= time(base) * 0.999);
    }

    /// Every feasible analytic candidate beats the memory-time constraint
    /// and fits every budget, and the solver's pick (when one exists)
    /// dominates the feasible set's objective.
    #[test]
    fn analytic_model_scaling(reg_div in 1usize..3, smem_div in 1usize..2) {
        let spec = DeviceSpec::t4();
        let mut model = AnalyticModel::for_device(&spec);
        model.budget.register_file_bytes /= reg_div;
        model.budget.shared_mem_bytes /= smem_div;
        let cands = model.feasible_candidates();
        for c in &cands {
            prop_assert!(c.t_mem1 + c.t_mem2 <= c.t_comp + 1e-9);
            prop_assert!(c.register_bytes <= model.budget.register_file_bytes);
            prop_assert!(c.smem_bytes <= model.budget.shared_mem_bytes);
        }
        if let Some(best) = egemm::solve_tiling(&model) {
            let best_obj = best.objective;
            for c in cands.iter().filter(|c| c.config.bm == c.config.bn) {
                prop_assert!(c.objective <= best_obj + 1e-9);
            }
        }
    }
}
