//! Integration tests of the event-loop frontend and the
//! content-addressed serving layer:
//!
//! - **Wire bit-exactness**: JSON and binary frames roundtrip f32
//!   payloads bit-exactly (binary even preserves NaN payload bits;
//!   JSON canonicalizes NaN but keeps infinities and subnormals exact).
//! - **Dedupe**: identical concurrent requests produce exactly one
//!   engine dispatch, fanned out to every ticket, bit-identical to a
//!   cold direct call.
//! - **Memoization**: a repeated request is served from the result
//!   cache bit-identically at pool sizes 1 and 4; mutating an operand
//!   buffer changes its fingerprint, so a stale hit is impossible.
//! - **Pipelining**: one connection with many in-flight requests gets
//!   every reply, matched by frame id, in either codec.
//! - **Backpressure**: a full admission queue pauses the socket instead
//!   of answering `Busy`; every pipelined request is eventually served.
//! - **Graceful drain**: shutdown under load flushes every pending
//!   pipelined reply and half-closes — no lost tickets, no truncated
//!   replies.

use egemm::{Egemm, EngineRuntime, RuntimeConfig, TilingConfig};
use egemm_matrix::Matrix;
use egemm_serve::{binwire, wire, EventServer, GemmRequest, Server, ServerConfig};
use egemm_tcsim::DeviceSpec;
use proptest::prelude::*;
use std::net::TcpStream;
use std::time::Duration;

/// An engine on a private runtime with a pinned pool size.
fn engine(threads: usize) -> Egemm {
    let rt = EngineRuntime::new(RuntimeConfig {
        threads,
        ..RuntimeConfig::default()
    });
    Egemm::new(DeviceSpec::t4(), TilingConfig::T4_PAPER).with_runtime(rt)
}

/// The cold reference: solo pool, cache disabled.
fn cold() -> Egemm {
    Egemm::new(DeviceSpec::t4(), TilingConfig::T4_PAPER).with_runtime(EngineRuntime::new(
        RuntimeConfig {
            threads: 1,
            cache_bytes: 0,
            ..RuntimeConfig::default()
        },
    ))
}

/// A matrix whose bits exercise the full f32 landscape: a random body
/// with NaN (nonstandard payload), infinities, and subnormals planted
/// at deterministic positions.
fn special_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<f32> {
    let mut m = Matrix::<f32>::random_uniform(rows, cols, seed);
    let plant = [
        f32::from_bits(0x7fc0_0123), // NaN with payload bits
        f32::INFINITY,
        f32::NEG_INFINITY,
        f32::from_bits(1),           // smallest positive subnormal
        f32::from_bits(0x807f_ffff), // largest negative subnormal
        -0.0,
    ];
    let total = rows * cols;
    for (i, v) in plant.iter().enumerate() {
        let at = (seed as usize + i * 7) % total;
        m.set(at / cols, at % cols, *v);
    }
    m
}

fn bits(m: &Matrix<f32>) -> Vec<u32> {
    m.as_slice().iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Binary frames carry raw little-endian f32: every bit pattern —
    /// including NaN payloads — survives request and response roundtrips.
    #[test]
    fn binary_wire_roundtrips_every_bit(
        m in 1usize..12,
        k in 1usize..12,
        n in 1usize..12,
        seed in 0u64..10_000,
        with_c in any::<bool>(),
    ) {
        let a = special_matrix(m, k, seed);
        let b = special_matrix(k, n, seed + 1);
        let mut req = GemmRequest::gemm(a.clone(), b.clone());
        if with_c {
            req.c = Some(special_matrix(m, n, seed + 2));
        }
        let frame = binwire::encode_request(seed, &req);
        let wire::WireRequest::Job { id, req: back } =
            binwire::decode_request(&frame).map_err(|e| e.to_string())?
        else {
            return Err("expected a job frame".into());
        };
        prop_assert_eq!(id, seed);
        prop_assert_eq!(bits(&back.a), bits(&a));
        prop_assert_eq!(bits(&back.b), bits(&b));
        if let (Some(c0), Some(c1)) = (&req.c, &back.c) {
            prop_assert_eq!(bits(c1), bits(c0));
        } else {
            prop_assert_eq!(req.c.is_some(), back.c.is_some());
        }

        // Response roundtrip over the same landscape.
        let d = special_matrix(m, n, seed + 3);
        let out = egemm_serve::ServeOutput {
            d: d.clone(),
            request_id: seed + 9,
            shape: req.shape(),
            batched_with: 2,
            cached: true,
            queue_ns: 11,
            total_ns: 22,
            report: None,
        };
        let frame = binwire::encode_response(seed, &Ok(out));
        let resp = binwire::decode_response(&frame).map_err(|e| e.to_string())?;
        let got = resp.result.map_err(|e| e.to_string())?;
        prop_assert_eq!(bits(&got.d), bits(&d));
        prop_assert!(got.cached);
        prop_assert_eq!(got.request_id, seed + 9);
    }

    /// JSON frames roundtrip f32 payloads bit-exactly too (shortest-
    /// roundtrip decimal keeps subnormals and -0.0; NaN travels as a
    /// string and canonicalizes, so NaN positions are compared by kind).
    #[test]
    fn json_wire_roundtrips_every_value(
        m in 1usize..10,
        k in 1usize..10,
        n in 1usize..10,
        seed in 0u64..10_000,
    ) {
        let a = special_matrix(m, k, seed);
        let b = special_matrix(k, n, seed + 1);
        let req = GemmRequest::gemm(a.clone(), b.clone());
        let frame = wire::encode_request(seed, &req);
        let wire::WireRequest::Job { req: back, .. } =
            wire::decode_request(frame.as_bytes()).map_err(|e| e.to_string())?
        else {
            return Err("expected a job frame".into());
        };
        for (orig, got) in [(&a, &back.a), (&b, &back.b)] {
            for (x, y) in orig.as_slice().iter().zip(got.as_slice()) {
                if x.is_nan() {
                    prop_assert!(y.is_nan());
                } else {
                    prop_assert_eq!(x.to_bits(), y.to_bits(), "{} vs {}", x, y);
                }
            }
        }
    }
}

#[test]
fn dedupe_coalesces_identical_concurrent_requests_into_one_dispatch() {
    let server = Server::start(
        engine(1),
        ServerConfig {
            // Memo off to isolate the in-flight table; a long batch
            // window keeps the primary queued while the copies attach.
            result_cache_bytes: 0,
            batch_window: Duration::from_millis(40),
            ..ServerConfig::default()
        },
    );
    let client = server.client();
    let a = Matrix::<f32>::random_uniform(24, 24, 61);
    let b = Matrix::<f32>::random_uniform(24, 24, 62);

    let tickets: Vec<_> = (0..4)
        .map(|_| {
            client
                .submit(GemmRequest::gemm(a.clone(), b.clone()))
                .expect("admitted")
        })
        .collect();
    let outs: Vec<_> = tickets
        .into_iter()
        .map(|t| t.wait().expect("served"))
        .collect();

    let direct = cold().gemm(&a, &b);
    for out in &outs {
        assert_eq!(bits(&out.d), bits(&direct.d), "fanned result bit-identical");
        assert!(!out.cached);
    }
    let ids: std::collections::HashSet<u64> = outs.iter().map(|o| o.request_id).collect();
    assert_eq!(ids.len(), 4, "every waiter keeps its own request id");

    let stats = server.stats();
    assert_eq!(stats.engine_calls, 1, "exactly one dispatch: {stats:?}");
    assert_eq!(stats.dedup_hits, 3, "three followers: {stats:?}");
    assert_eq!(stats.completed, 4);
    server.shutdown();
}

#[test]
fn memo_serves_bit_identical_results_and_never_stale() {
    for threads in [1usize, 4] {
        let server = Server::start(
            engine(threads),
            ServerConfig {
                result_cache_bytes: 8 << 20,
                ..ServerConfig::default()
            },
        );
        let client = server.client();
        let mut a = Matrix::<f32>::random_uniform(32, 32, 71);
        let b = Matrix::<f32>::random_uniform(32, 32, 72);

        let first = client
            .call(GemmRequest::gemm(a.clone(), b.clone()))
            .expect("served");
        assert!(!first.cached, "cold call computes");

        let second = client
            .call(GemmRequest::gemm(a.clone(), b.clone()))
            .expect("served");
        assert!(second.cached, "identical repeat hits the result cache");
        let direct = cold().gemm(&a, &b);
        assert_eq!(
            bits(&second.d),
            bits(&first.d),
            "memo bit-identical (pool {threads})"
        );
        assert_eq!(
            bits(&second.d),
            bits(&direct.d),
            "…and equal to cold direct"
        );

        // Mutation: same buffers, one changed element → new fingerprint,
        // no stale hit, result matches a cold call on the new contents.
        a.set(3, 5, 0.123_456_79);
        let third = client
            .call(GemmRequest::gemm(a.clone(), b.clone()))
            .expect("served");
        assert!(!third.cached, "mutated operand must not hit the cache");
        let direct_mut = cold().gemm(&a, &b);
        assert_eq!(bits(&third.d), bits(&direct_mut.d));
        assert_ne!(bits(&third.d), bits(&first.d), "contents actually changed");

        let stats = server.stats();
        assert_eq!(stats.result_cache_hits, 1, "{stats:?}");
        assert_eq!(stats.engine_calls, 2, "cold + mutated only: {stats:?}");
        assert!(stats.result_cache_bytes > 0);
        server.shutdown();
    }
}

/// Read one framed reply and decode it in whichever codec it arrived.
fn read_reply(conn: &mut TcpStream) -> wire::WireResponse {
    let frame = wire::read_frame(conn).unwrap().expect("reply frame");
    if binwire::is_binary(&frame) {
        binwire::decode_response(&frame).expect("binary decode")
    } else {
        wire::decode_response(&frame).expect("json decode")
    }
}

#[test]
fn event_frontend_pipelines_mixed_codecs_on_one_connection() {
    let server = Server::start(engine(1), ServerConfig::default());
    let evt = EventServer::bind("127.0.0.1:0", server.client()).expect("bind");

    let mut conn = TcpStream::connect(evt.local_addr()).expect("connect");
    let depth = 8;
    let mut expected = std::collections::HashMap::new();
    for i in 0..depth {
        let a = Matrix::<f32>::random_uniform(12, 12, 500 + i);
        let b = Matrix::<f32>::random_uniform(12, 12, 600 + i);
        let req = GemmRequest::gemm(a.clone(), b.clone());
        // Alternate codecs frame by frame: negotiation is per frame.
        if i % 2 == 0 {
            wire::write_frame(&mut conn, wire::encode_request(i, &req).as_bytes()).unwrap();
        } else {
            wire::write_frame(&mut conn, &binwire::encode_request(i, &req)).unwrap();
        }
        expected.insert(i, cold().gemm(&a, &b).d);
    }
    for _ in 0..depth {
        let resp = read_reply(&mut conn);
        let out = resp.result.expect("served");
        let want = expected.remove(&resp.id).expect("unique reply per id");
        assert_eq!(
            bits(&out.d),
            bits(&want),
            "bit identity over the event loop"
        );
    }
    assert!(expected.is_empty(), "every pipelined request answered");

    evt.shutdown();
    server.shutdown();
}

#[test]
fn backpressure_pauses_the_socket_instead_of_rejecting() {
    let server = Server::start(
        engine(1),
        ServerConfig {
            queue_cap: 1,
            batch_window: Duration::from_millis(10),
            result_cache_bytes: 0,
            ..ServerConfig::default()
        },
    );
    let evt = EventServer::bind("127.0.0.1:0", server.client()).expect("bind");

    let mut conn = TcpStream::connect(evt.local_addr()).expect("connect");
    let depth = 6;
    for i in 0..depth {
        // Distinct operands: identical ones would dedupe around the
        // queue and never exercise the stall path.
        let a = Matrix::<f32>::random_uniform(16, 16, 700 + i);
        let b = Matrix::<f32>::random_uniform(16, 16, 800 + i);
        let req = GemmRequest::gemm(a, b);
        wire::write_frame(&mut conn, &binwire::encode_request(i, &req)).unwrap();
    }
    let mut seen = std::collections::HashSet::new();
    for _ in 0..depth {
        let resp = read_reply(&mut conn);
        assert!(
            resp.result.is_ok(),
            "backpressure must never surface Busy on the wire: {:?}",
            resp.result.err()
        );
        seen.insert(resp.id);
    }
    assert_eq!(seen.len(), depth as usize, "all pipelined requests served");

    evt.shutdown();
    server.shutdown();
}

#[test]
fn shutdown_under_load_flushes_every_pipelined_reply() {
    let server = Server::start(
        engine(1),
        ServerConfig {
            batch_window: Duration::from_millis(5),
            ..ServerConfig::default()
        },
    );
    let evt = EventServer::bind("127.0.0.1:0", server.client()).expect("bind");
    let addr = evt.local_addr();

    let conns = 4u64;
    let depth = 6u64;
    let clients: Vec<_> = (0..conns)
        .map(|c| {
            std::thread::spawn(move || {
                let mut conn = TcpStream::connect(addr).expect("connect");
                for i in 0..depth {
                    let a = Matrix::<f32>::random_uniform(20, 20, 1000 + c * 100 + i);
                    let b = Matrix::<f32>::random_uniform(20, 20, 2000 + c * 100 + i);
                    let req = GemmRequest::gemm(a, b);
                    wire::write_frame(&mut conn, &binwire::encode_request(i, &req)).unwrap();
                }
                // Read replies until EOF: the drain must deliver every
                // one of them, then half-close (FIN, not RST).
                let mut got = Vec::new();
                loop {
                    match wire::read_frame(&mut conn) {
                        Ok(Some(frame)) => {
                            let resp = binwire::decode_response(&frame).expect("decode");
                            resp.result.expect("pipelined reply served, not dropped");
                            got.push(resp.id);
                        }
                        Ok(None) => break, // clean EOF after the last reply
                        Err(e) => panic!("transport error during drain (RST?): {e}"),
                    }
                }
                got
            })
        })
        .collect();

    // Let the requests land in flight, then drain under load.
    std::thread::sleep(Duration::from_millis(30));
    evt.shutdown();

    for h in clients {
        let mut got = h.join().expect("client thread");
        got.sort_unstable();
        assert_eq!(
            got,
            (0..depth).collect::<Vec<_>>(),
            "every pipelined request answered exactly once before close"
        );
    }
    let stats = server.stats();
    assert_eq!(
        stats.admitted, stats.completed,
        "no admitted ticket lost in the drain: {stats:?}"
    );
    server.shutdown();
}

#[test]
fn event_frontend_sustains_many_concurrent_connections() {
    let server = Server::start(engine(1), ServerConfig::default());
    let evt = EventServer::bind("127.0.0.1:0", server.client()).expect("bind");
    let addr = evt.local_addr();

    let conns = 64u64;
    let handles: Vec<_> = (0..conns)
        .map(|c| {
            std::thread::spawn(move || {
                let mut conn = TcpStream::connect(addr).expect("connect");
                for i in 0..2u64 {
                    let a = Matrix::<f32>::random_uniform(8, 8, 3000 + c * 10 + i);
                    let b = Matrix::<f32>::random_uniform(8, 8, 4000 + c * 10 + i);
                    let req = GemmRequest::gemm(a, b);
                    wire::write_frame(&mut conn, &binwire::encode_request(i, &req)).unwrap();
                }
                for _ in 0..2 {
                    let frame = wire::read_frame(&mut conn).unwrap().expect("reply");
                    binwire::decode_response(&frame)
                        .expect("decode")
                        .result
                        .expect("served");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    let stats = server.stats();
    assert_eq!(stats.completed, conns * 2, "{stats:?}");

    evt.shutdown();
    server.shutdown();
}
