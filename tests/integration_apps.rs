//! Cross-crate integration spanning baselines + applications: the whole
//! Table 5 kernel zoo driving the §7.5 workloads, checked for numeric
//! agreement and modeled-performance consistency.

use egemm_baselines::{
    CublasCudaFp32, CublasTcEmulation, CublasTcHalf, EgemmTc, GemmBaseline, Markidis, SdkCudaFp32,
};
use egemm_matrix::{GemmShape, Matrix};
use egemm_sci::{
    app_speedup, gaussian_blobs, kmeans_iteration, knn_exact, knn_iteration, recall_at_k,
    uniform_cloud, KMeans, Knn, KMEANS_D, KMEANS_K, KNN_D, KNN_K,
};
use egemm_tcsim::DeviceSpec;

fn all_backends(spec: DeviceSpec) -> Vec<Box<dyn GemmBaseline>> {
    vec![
        Box::new(EgemmTc::auto(spec)),
        Box::new(CublasCudaFp32::new()),
        Box::new(CublasTcEmulation::new(spec)),
        Box::new(CublasTcHalf::new(spec)),
        Box::new(SdkCudaFp32::new()),
        Box::new(Markidis::new(spec)),
    ]
}

#[test]
fn every_backend_drives_kmeans() {
    let spec = DeviceSpec::t4();
    let (data, _, _) = gaussian_blobs(120, 16, 3, 0.01, 1);
    let mut reference: Option<Vec<usize>> = None;
    for backend in all_backends(spec) {
        let result = KMeans::new(backend.as_ref()).fit(&data, 3, 9);
        assert_eq!(result.assignments.len(), 120, "{}", backend.name());
        // Well-separated blobs: every backend, even half precision, finds
        // the same partition.
        match &reference {
            None => reference = Some(result.assignments),
            Some(r) => {
                // Compare up to label permutation via co-membership.
                for i in 0..120 {
                    for j in (i + 1)..120 {
                        assert_eq!(
                            r[i] == r[j],
                            result.assignments[i] == result.assignments[j],
                            "{}: pair ({i},{j})",
                            backend.name()
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn every_backend_drives_knn_with_high_recall() {
    let spec = DeviceSpec::t4();
    let q = uniform_cloud(24, 32, 2);
    let r = uniform_cloud(160, 32, 3);
    let truth = knn_exact(&q, &r, 5);
    for backend in all_backends(spec) {
        let res = Knn::new(backend.as_ref()).search(&q, &r, 5);
        let recall = recall_at_k(&res.indices, &truth);
        // Sparse reference sets: even half precision ranks these.
        assert!(recall >= 0.9, "{}: recall {recall}", backend.name());
    }
}

#[test]
fn speedup_hierarchy_is_consistent_across_apps() {
    // The faster the GEMM backend, the faster the application: the
    // application model must preserve the GEMM ordering.
    let spec = DeviceSpec::t4();
    let eg = EgemmTc::auto(spec);
    let fp = CublasCudaFp32::new();
    let sdk = SdkCudaFp32::new();
    let n = 8192;
    let t_eg = kmeans_iteration(&spec, &eg, n, KMEANS_D, KMEANS_K);
    let t_fp = kmeans_iteration(&spec, &fp, n, KMEANS_D, KMEANS_K);
    let t_sdk = kmeans_iteration(&spec, &sdk, n, KMEANS_D, KMEANS_K);
    assert!(t_eg.total_s() < t_fp.total_s());
    assert!(t_fp.total_s() < t_sdk.total_s());
    // Speedups over the slowest backend are ordered accordingly.
    let s_eg = app_speedup(t_sdk, t_eg);
    let s_fp = app_speedup(t_sdk, t_fp);
    assert!(s_eg > s_fp && s_fp > 1.0);
}

#[test]
fn knn_gemm_dominates_at_scale_for_every_tc_backend() {
    let spec = DeviceSpec::t4();
    for backend in [
        &EgemmTc::auto(spec) as &dyn GemmBaseline,
        &CublasTcHalf::new(spec),
    ] {
        let t = knn_iteration(&spec, backend, 16384, KNN_D, KNN_K);
        assert!(
            t.gemm_fraction() > 0.3,
            "{}: GEMM fraction {}",
            backend.name(),
            t.gemm_fraction()
        );
    }
}

#[test]
fn backend_timings_are_self_consistent_across_shapes() {
    // tflops() and time() must agree through Eq. 9 for every backend and
    // a spread of shapes.
    let spec = DeviceSpec::t4();
    for backend in all_backends(spec) {
        for shape in [
            GemmShape::square(2048),
            GemmShape::skewed_k(2048),
            GemmShape::skewed_m(1024),
            GemmShape::new(512, 8192, 1024),
        ] {
            let t = backend.time(&spec, shape);
            let expect = shape.flops() as f64 / t.time_s / 1e12;
            assert!(
                (t.tflops - expect).abs() < 1e-9,
                "{} at {shape}: {} vs {}",
                backend.name(),
                t.tflops,
                expect
            );
        }
    }
}

#[test]
fn half_backend_loses_recall_on_dense_sets() {
    // The precision story end-to-end: densify the reference set until
    // half-precision misranks, then verify EGEMM-TC does not.
    let spec = DeviceSpec::t4();
    // Construct guaranteed near-ties: queries and references drawn as
    // small perturbations of one base point, so all distances are nearly
    // equal and the ranking hinges on digits below half precision.
    let d = 256;
    let base = uniform_cloud(1, d, 50);
    let jitter = |n: usize, seed: u64, scale: f32| {
        let noise = uniform_cloud(n, d, seed);
        Matrix::from_fn(n, d, |i, j| base.get(0, j) + scale * noise.get(i, j))
    };
    let q = jitter(32, 51, 0.02);
    let r = jitter(800, 52, 0.02);
    let truth = knn_exact(&q, &r, 10);
    let rec_half = recall_at_k(
        &Knn::new(&CublasTcHalf::new(spec))
            .search(&q, &r, 10)
            .indices,
        &truth,
    );
    let rec_eg = recall_at_k(
        &Knn::new(&EgemmTc::auto(spec)).search(&q, &r, 10).indices,
        &truth,
    );
    assert!(rec_eg > rec_half, "EGEMM {rec_eg} vs half {rec_half}");
    assert!(rec_half < 0.95, "half should visibly misrank: {rec_half}");
    assert!(rec_eg >= 0.95, "EGEMM recall {rec_eg}");
}

#[test]
fn matrix_products_agree_between_extended_backends() {
    // EGEMM-TC and the 4-launch emulation compute the same mathematical
    // object with different accumulation grouping: results agree to the
    // emulation error envelope, not bitwise.
    let spec = DeviceSpec::t4();
    let a = Matrix::<f32>::random_uniform(96, 96, 7);
    let b = Matrix::<f32>::random_uniform(96, 96, 8);
    let d1 = EgemmTc::auto(spec).compute(&a, &b);
    let d2 = CublasTcEmulation::new(spec).compute(&a, &b);
    let max = d1
        .as_slice()
        .iter()
        .zip(d2.as_slice())
        .map(|(x, y)| (x - y).abs())
        .fold(0f32, f32::max);
    assert!(max < 1e-4, "extended backends diverged by {max}");
    assert_ne!(d1, d2, "different grouping must differ in low bits");
}
